#ifndef HYDER2_TREE_NODE_H_
#define HYDER2_TREE_NODE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "tree/node_pool.h"
#include "tree/version_id.h"

namespace hyder {

/// Keys are fixed-width integers, as in the paper's YCSB-style evaluation
/// (4-byte keys, §6.1); we use 64 bits to allow large key spaces.
using Key = uint64_t;

/// Per-node transaction metadata flags (§2, Appendix A).
enum NodeFlags : uint8_t {
  /// The transaction wrote this node's payload ("Altered").
  kFlagAltered = 1u << 0,
  /// The transaction read this node's payload under an isolation level that
  /// validates reads ("DependsOn").
  kFlagRead = 1u << 1,
  /// The transaction depends on the *entire subtree* under this node being
  /// structurally unchanged. Set by range scans on maximal subtrees fully
  /// contained in the scanned interval; this is the phantom-avoidance
  /// metadata Appendix A alludes to.
  kFlagSubtreeRead = 1u << 2,
  /// In-memory only (computed at deserialization, propagated through meld
  /// outputs): some node in this subtree was altered/inserted by the
  /// transaction. Lets the meld graft fast-path apply the paper's §3.3
  /// distinction — read-only matching subtrees return the *base* side when
  /// the output is a state ([8]'s original line 7) and the *intention* side
  /// when the output feeds another meld (the §3.3 modification).
  kFlagSubtreeHasWrites = 1u << 3,
};

enum class Color : uint8_t { kRed = 0, kBlack = 1 };

class Node;
class WideExt;

/// Increments the reference count. `n` may be null.
inline void NodeRef(Node* n);
/// Decrements the reference count, destroying the node (and unreferencing
/// its children, iteratively) when it reaches zero. `n` may be null.
void NodeUnref(Node* n);

/// Intrusive refcounted smart pointer to an immutable tree node.
///
/// Hyder's database states are persistent trees that share structure across
/// versions; nodes are freed when the last state or intention referencing
/// them is released. Reference counts are atomic because executor threads
/// traverse snapshots while the meld pipeline publishes new states.
class NodePtr {
 public:
  NodePtr() = default;
  NodePtr(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  /// Adopts an existing reference (does NOT increment). Use `NodePtr::Share`
  /// to copy-and-increment from a raw pointer.
  static NodePtr Adopt(Node* n) { return NodePtr(n); }
  static NodePtr Share(Node* n) {
    NodeRef(n);
    return NodePtr(n);
  }

  NodePtr(const NodePtr& o) : n_(o.n_) { NodeRef(n_); }
  NodePtr(NodePtr&& o) noexcept : n_(o.n_) { o.n_ = nullptr; }
  NodePtr& operator=(const NodePtr& o) {
    if (this != &o) {
      NodeRef(o.n_);
      NodeUnref(n_);
      n_ = o.n_;
    }
    return *this;
  }
  NodePtr& operator=(NodePtr&& o) noexcept {
    if (this != &o) {
      NodeUnref(n_);
      n_ = o.n_;
      o.n_ = nullptr;
    }
    return *this;
  }
  ~NodePtr() { NodeUnref(n_); }

  Node* get() const { return n_; }
  Node* operator->() const { return n_; }
  Node& operator*() const { return *n_; }
  explicit operator bool() const { return n_ != nullptr; }

  /// Releases ownership without decrementing.
  Node* Release() {
    Node* n = n_;
    n_ = nullptr;
    return n;
  }

  void Reset() {
    NodeUnref(n_);
    n_ = nullptr;
  }

  friend bool operator==(const NodePtr& a, const NodePtr& b) {
    return a.n_ == b.n_;
  }
  friend bool operator==(const NodePtr& a, std::nullptr_t) {
    return a.n_ == nullptr;
  }

 private:
  explicit NodePtr(Node* n) : n_(n) {}
  Node* n_ = nullptr;
};

/// A child-edge value: the identity of the target plus, when materialized,
/// a strong pointer to it.
///
/// States:
///  * null edge:      `!node && vn.IsNull()`
///  * materialized:   `node != nullptr` (vn may be null for provisional
///                    nodes the executor has built but not yet logged)
///  * lazy:           `!node && vn.IsLogged()` — the paper's "node pointer
///                    left as a log position; if dereferenced later, fetched
///                    from the log" (§5.2). Ephemeral targets are never left
///                    lazy because ephemeral nodes cannot be refetched.
struct Ref {
  NodePtr node;
  VersionId vn;

  Ref() = default;
  Ref(NodePtr n, VersionId v) : node(std::move(n)), vn(v) {}
  static Ref Null() { return Ref(); }
  static Ref Lazy(VersionId v) { return Ref(nullptr, v); }
  /// A materialized reference to `n` (shares ownership).
  static Ref To(const NodePtr& n);

  bool IsNull() const { return !node && vn.IsNull(); }
  bool IsLazy() const { return !node && !vn.IsNull(); }
};

/// Resolves lazy references. Implemented by the server layer on top of the
/// block cache and the ephemeral-node registry.
class NodeResolver {
 public:
  virtual ~NodeResolver() = default;

  /// Returns the materialized node for `vn`. Fails with:
  ///  * `SnapshotTooOld` — `vn` is ephemeral and retired from the registry;
  ///  * `NotFound` / `Corruption` — log-level failures.
  virtual Result<NodePtr> Resolve(VersionId vn) = 0;

  /// Best-effort lookup that only consults in-memory state — no log IO, no
  /// refetch, never an error. Returns null when the node is not immediately
  /// at hand; the caller keeps the reference lazy and `Resolve` handles it
  /// on first dereference. Deserialization uses this to pre-materialize
  /// external references on the decode thread, sparing the meld thread the
  /// resolver lock on first touch (the reference's identity is its version
  /// id either way, so pre-resolution cannot affect meld decisions).
  [[nodiscard]] virtual NodePtr TryResolveCached(VersionId vn) {
    return nullptr;
  }
};

/// A child slot inside a node. Holds a strong reference when materialized.
///
/// After a node is published (logged or melded into a state), the only legal
/// mutation is the lazy→materialized memoization, which is a CAS and safe
/// under concurrent readers. Before publication (executor- or meld-private
/// nodes), `Reset` may rewire the edge freely.
class ChildSlot {
 public:
  ChildSlot() = default;
  // relaxed: the destructor runs with exclusive access; any concurrent
  // lazy->materialized CAS happened-before the last reference was dropped.
  ~ChildSlot() { NodeUnref(node_.load(std::memory_order_relaxed)); }

  ChildSlot(const ChildSlot&) = delete;
  ChildSlot& operator=(const ChildSlot&) = delete;

  /// Snapshot of the edge without fetching (may be lazy).
  Ref GetLocal() const {
    Node* n = node_.load(std::memory_order_acquire);
    if (n != nullptr) return Ref(NodePtr::Share(n), vn_);
    return Ref(nullptr, vn_);
  }

  /// Materialized target (null NodePtr if the edge is null). Fetches through
  /// `resolver` and memoizes on first use.
  Result<NodePtr> Get(NodeResolver* resolver) const;

  /// Publishes `n` as the materialized target of a still-lazy edge — the
  /// same CAS `Get` performs after resolving, split out so decode can
  /// pre-materialize edges it already has nodes for without a resolver
  /// round trip. Legal on published nodes. The caller guarantees `n` is
  /// the node this slot's vn identifies; a lost race is a no-op (some
  /// other thread installed the canonical node first).
  void Memoize(const NodePtr& n) const {
    Node* raw = n.get();
    if (raw == nullptr) return;
    Node* expected = nullptr;
    NodeRef(raw);
    if (!node_.compare_exchange_strong(expected, raw,
                                       std::memory_order_acq_rel)) {
      NodeUnref(raw);
    }
  }

  /// Rewires the edge. Only for unpublished nodes.
  void Reset(Ref r) {
    Node* neu = r.node.Release();
    Node* old = node_.exchange(neu, std::memory_order_acq_rel);
    NodeUnref(old);
    vn_ = r.vn;
  }

  VersionId vn() const { return vn_; }
  bool IsNullEdge() const {
    return vn_.IsNull() && node_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  friend void NodeUnref(Node*);

  mutable std::atomic<Node*> node_{nullptr};
  VersionId vn_{};
};

/// Per-slot meld metadata of a wide node: the provenance triple a binary
/// node carries per node (`ssv` / `base_cv` / `cv`), plus the
/// Altered/DependsOn flags, moved to slot granularity so premeld and final
/// meld run their conflict checks per key slot instead of per page. Slot
/// *identity* is (page vn, slot index); slot *content* identity is `cv`,
/// always a logged id, exactly as for binary nodes.
struct WideSlotMeta {
  VersionId ssv{};
  VersionId base_cv{};
  VersionId cv{};
  uint8_t flags = 0;
};

/// One key slot of a wide node: key, payload and per-slot meld metadata.
/// Payload storage mirrors Node's inline/heap scheme (kNodeInlinePayloadCap
/// bytes inline in the slot, heap fallback beyond).
class WideSlot {
 public:
  WideSlot() = default;
  ~WideSlot() {
    if (heap_cap_ != 0) {
      delete[] pay_.heap;
      CountPayloadHeapFree();
    }
  }

  WideSlot(const WideSlot&) = delete;
  WideSlot& operator=(const WideSlot&) = delete;

  Key key = 0;
  WideSlotMeta meta;

  std::string_view payload() const {
    return size_ <= kNodeInlinePayloadCap
               ? std::string_view(pay_.inline_buf, size_)
               : std::string_view(pay_.heap, size_);
  }
  void set_payload(std::string_view p);

  bool altered() const { return meta.flags & kFlagAltered; }
  bool read_dependent() const { return meta.flags & kFlagRead; }

  /// Steals `o`'s payload buffer along with key and metadata (slot shifts
  /// inside one private page). `o` is left empty.
  void MoveFrom(WideSlot& o);
  /// Duplicates key, metadata and payload bytes (page clones and the
  /// deletion relocation).
  void CopyFrom(const WideSlot& o);
  /// Resets to the default-constructed state, freeing any heap payload.
  void Clear();

 private:
  union Payload {
    char inline_buf[kNodeInlinePayloadCap];
    char* heap;
  } pay_;
  uint32_t size_ = 0;
  uint32_t heap_cap_ = 0;
};

/// The wide extension of a Node: up to `cap` sorted key slots plus `cap`+1
/// child edges, allocated as one size-classed extent from the node arena
/// (see node_pool.h / btree_sizer.h). Child `i` roots the subtree of keys
/// strictly between slot `i-1` and slot `i` (classic B-tree intervals);
/// `count` live slots occupy indices [0, count) and children [0, count]
/// are meaningful. Per-gap read flags record range-scan / miss structural
/// dependencies at sub-page granularity — the wide-layout analog of
/// kFlagSubtreeRead on an absent binary subtree.
class WideExt {
 public:
  int cap() const { return cap_; }
  int count() const { return count_; }
  void set_count(int c) { count_ = static_cast<uint16_t>(c); }

  WideSlot& slot(int i) { return slots_[i]; }
  const WideSlot& slot(int i) const { return slots_[i]; }
  ChildSlot& child(int i) { return children_[i]; }
  const ChildSlot& child(int i) const { return children_[i]; }

  bool gap_read(int i) const { return gap_read_[i] != 0; }
  void set_gap_read(int i, bool v) { gap_read_[i] = v ? 1 : 0; }
  bool any_gap_read() const {
    for (int i = 0; i <= count_; ++i) {
      if (gap_read_[i]) return true;
    }
    return false;
  }
  void clear_gap_reads() {
    for (int i = 0; i <= count_; ++i) gap_read_[i] = 0;
  }

  /// Opens slot `pos`, shifting slots [pos, count) and children/gaps
  /// (pos, count] one step right. Child `pos+1` comes out as a null edge
  /// with a clear gap flag; the caller fills slot `pos` (and rewires
  /// children pos / pos+1 when splitting). Requires count < cap.
  void OpenSlot(int pos);
  /// Removes slot `pos` together with child `child_pos` (pos or pos+1;
  /// must be a null edge), closing the arrays. The two gaps flanking the
  /// removed slot merge; their read flags OR together — a structural
  /// dependency on either sub-interval becomes one on the merged interval.
  void CloseSlot(int pos, int child_pos);

 private:
  friend WideExt* CreateWideExt(int fanout);
  friend void DestroyWideExt(WideExt* ext);

  uint16_t cap_ = 0;
  uint16_t count_ = 0;
  /// Arrays live in the same extent, directly after this header.
  WideSlot* slots_ = nullptr;       ///< `cap` entries.
  ChildSlot* children_ = nullptr;   ///< `cap`+1 entries.
  uint8_t* gap_read_ = nullptr;     ///< `cap`+1 bytes.
};

/// Allocates and constructs a wide extension with `fanout` key slots from
/// the size-classed extent arena (btree_sizer picks the class).
WideExt* CreateWideExt(int fanout);
/// Destroys slots/children and returns the extent to its arena class.
void DestroyWideExt(WideExt* ext);

/// Bytes of the one-block extent backing a WideExt of `cap` slots (header
/// plus the three trailing arrays). btree_sizer rounds capacities up to a
/// slab class and sizes the class arenas with this.
size_t WideExtentBytes(int cap);

/// One immutable version of one key's node in the multi-versioned tree.
///
/// Metadata semantics (see DESIGN.md "The meld operator"):
///  * `vn`      — this version's identity.
///  * `ssv`     — id of the same-key node in the base state this version was
///                derived from ("source structure version"); null if the key
///                was inserted by the producing transaction.
///  * `base_cv` — content version of that base node: the logged id of the
///                node that created the payload the transaction observed or
///                overwrote (the paper's SCV). Null for inserts.
///  * `cv`      — content version of *this* node: the logged id that created
///                the current payload. Equals `base_cv` when not altered.
///                Content versions are always logged ids, making content
///                conflict checks independent of meld-thread configuration.
class Node {
 public:
  Node(Key key, std::string_view payload) : key_(key) {
    SetPayload(payload);
  }

  /// Wide-layout node: key slots and per-slot metadata live in `ext`; the
  /// node-level `key_`/payload/color fields are unused. Node-level `vn`,
  /// `ssv`, `owner` and flags keep their meaning at page granularity
  /// (kFlagSubtreeRead = the page's structural-read mark).
  explicit Node(WideExt* ext) : key_(0), wide_(ext) {}

  ~Node() {
    if (heap_cap_ != 0) {
      delete[] pay_.heap;
      CountPayloadHeapFree();
    }
    if (wide_ != nullptr) DestroyWideExt(wide_);
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Key key() const { return key_; }

  /// The payload bytes. Stored inline in the node slot when the payload
  /// is at most `kNodeInlinePayloadCap` bytes; in a heap buffer otherwise.
  /// The view is invalidated by `set_payload`.
  std::string_view payload() const {
    return payload_size_ <= kNodeInlinePayloadCap
               ? std::string_view(pay_.inline_buf, payload_size_)
               : std::string_view(pay_.heap, payload_size_);
  }
  void set_payload(std::string_view p) { SetPayload(p); }

  /// Changes the key. Only legal during the two-children deletion
  /// relocation, on a private (unpublished) clone whose metadata is being
  /// replaced wholesale by the successor's.
  void set_key_for_relocation(Key k) { key_ = k; }

  VersionId vn() const { return vn_; }
  VersionId ssv() const { return ssv_; }
  VersionId base_cv() const { return base_cv_; }
  VersionId cv() const { return cv_; }
  void set_vn(VersionId v) { vn_ = v; }
  void set_ssv(VersionId v) { ssv_ = v; }
  void set_base_cv(VersionId v) { base_cv_ = v; }
  void set_cv(VersionId v) { cv_ = v; }

  uint64_t owner() const { return owner_; }
  void set_owner(uint64_t o) { owner_ = o; }

  Color color() const { return color_; }
  void set_color(Color c) { color_ = c; }

  uint8_t flags() const { return flags_; }
  void set_flags(uint8_t f) { flags_ = f; }
  bool altered() const { return flags_ & kFlagAltered; }
  bool read_dependent() const { return flags_ & kFlagRead; }
  bool subtree_read() const { return flags_ & kFlagSubtreeRead; }
  bool subtree_has_writes() const { return flags_ & kFlagSubtreeHasWrites; }

  ChildSlot& left() { return left_; }
  ChildSlot& right() { return right_; }
  const ChildSlot& left() const { return left_; }
  const ChildSlot& right() const { return right_; }
  ChildSlot& child(bool right_side) { return right_side ? right_ : left_; }
  const ChildSlot& child(bool right_side) const {
    return right_side ? right_ : left_;
  }

  bool is_wide() const { return wide_ != nullptr; }
  WideExt* wide() { return wide_; }
  const WideExt* wide() const { return wide_; }

  /// Layout-generic child iteration for walkers (destruction, checkpoint,
  /// registries): binary nodes expose {left, right}, wide nodes expose
  /// their `count`+1 edges.
  int child_count() const { return wide_ ? wide_->count() + 1 : 2; }
  ChildSlot& child_at(int i) {
    return wide_ ? wide_->child(i) : (i == 0 ? left_ : right_);
  }
  const ChildSlot& child_at(int i) const {
    return wide_ ? wide_->child(i) : (i == 0 ? left_ : right_);
  }

  /// The page's structural-read mark: the page-level kFlagSubtreeRead or
  /// any per-gap read flag. Meld's wide phantom check keys off this.
  bool page_structural_read() const {
    return subtree_read() || (wide_ != nullptr && wide_->any_gap_read());
  }

  /// Optimistic read validation (OLC-style seqlock). The version word is
  /// even when the node is stable and odd while a writer mutates it in
  /// place. In-place mutation is only legal on unpublished (executor- or
  /// meld-private) nodes, but a snapshot reader can race the *executor's
  /// own* later writes inside one transaction when reads are not
  /// annotated, and validate.cc probes stability; readers take a version
  /// before reading and re-check it after instead of locking.
  [[nodiscard]] uint64_t OlcReadBegin() const {
    uint64_t v = olc_.load(std::memory_order_acquire);
    while (v & 1) v = olc_.load(std::memory_order_acquire);
    return v;
  }
  [[nodiscard]] bool OlcReadValidate(uint64_t v) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    // relaxed: the fence above orders the preceding data reads against
    // this re-check; the load itself needs no edge of its own.
    return olc_.load(std::memory_order_relaxed) == v;
  }
  void OlcWriteBegin() { olc_.fetch_add(1, std::memory_order_acq_rel); }
  void OlcWriteEnd() { olc_.fetch_add(1, std::memory_order_release); }
  uint64_t olc_version() const {
    return olc_.load(std::memory_order_acquire);
  }

  uint32_t RefCount() const { return refs_.load(std::memory_order_acquire); }

 private:
  friend void NodeRef(Node*);
  friend void NodeUnref(Node*);

  /// Copies `p` into the inline buffer or the heap fallback, reusing an
  /// existing heap buffer when it is large enough. The invariant is that
  /// the payload lives inline exactly when it fits the inline cap.
  void SetPayload(std::string_view p) {
    const uint32_t size = static_cast<uint32_t>(p.size());
    if (size <= kNodeInlinePayloadCap) {
      char* old_heap = heap_cap_ != 0 ? pay_.heap : nullptr;
      // Copy before freeing: `p` may alias the old heap buffer.
      if (size != 0) std::memmove(pay_.inline_buf, p.data(), size);
      if (old_heap != nullptr) {
        delete[] old_heap;
        CountPayloadHeapFree();
        heap_cap_ = 0;
      }
    } else if (heap_cap_ >= size) {
      std::memmove(pay_.heap, p.data(), size);
    } else {
      char* buf = new char[size];
      CountPayloadHeapAlloc();
      std::memcpy(buf, p.data(), size);
      if (heap_cap_ != 0) {
        delete[] pay_.heap;
        CountPayloadHeapFree();
      }
      pay_.heap = buf;
      heap_cap_ = size;
    }
    payload_size_ = size;
  }

  std::atomic<uint32_t> refs_{1};
  Color color_ = Color::kRed;
  uint8_t flags_ = 0;
  Key key_;
  VersionId vn_{};
  VersionId ssv_{};
  VersionId base_cv_{};
  VersionId cv_{};
  uint64_t owner_ = 0;
  /// Payload storage: `inline_buf` when `payload_size_` fits the inline
  /// cap, otherwise a heap buffer of capacity `heap_cap_`.
  union Payload {
    char inline_buf[kNodeInlinePayloadCap];
    char* heap;
  } pay_;
  uint32_t payload_size_ = 0;
  uint32_t heap_cap_ = 0;
  /// Non-null for wide-layout nodes; owned (freed with the node).
  WideExt* wide_ = nullptr;
  /// OLC version word; see OlcReadBegin.
  mutable std::atomic<uint64_t> olc_{0};
  ChildSlot left_;
  ChildSlot right_;
};

/// RAII writer bump around in-place mutation of a private node, pairing
/// OlcWriteBegin/OlcWriteEnd so concurrent optimistic readers retry.
class OlcWriteGuard {
 public:
  explicit OlcWriteGuard(Node* n) : n_(n) { n_->OlcWriteBegin(); }
  ~OlcWriteGuard() { n_->OlcWriteEnd(); }
  OlcWriteGuard(const OlcWriteGuard&) = delete;
  OlcWriteGuard& operator=(const OlcWriteGuard&) = delete;

 private:
  Node* const n_;
};

inline void NodeRef(Node* n) {
  // relaxed: a new reference is always created from an existing one, so
  // the count can only be raced upward; NodeUnref's release/acquire pair
  // orders destruction.
  if (n != nullptr) n->refs_.fetch_add(1, std::memory_order_relaxed);
}

inline Ref Ref::To(const NodePtr& n) {
  return Ref(n, n ? n->vn() : VersionId());
}

/// Total count of live Node objects (for leak tests). An arena stat; see
/// `NodeArenaStats` for the full breakdown.
uint64_t LiveNodeCount();

/// Allocates a node from the slab pool, tracked by `LiveNodeCount`. All
/// node creation in the library goes through this helper.
NodePtr MakeNode(Key key, std::string_view payload);

/// Allocates an empty wide-layout node with `fanout` key slots (node slot
/// plus a size-classed extent for the slot/child arrays).
NodePtr MakeWideNode(int fanout);

}  // namespace hyder

#endif  // HYDER2_TREE_NODE_H_
