#include "tree/node.h"

#include <cstring>
#include <new>
#include <vector>

#include "tree/node_pool.h"

namespace hyder {

NodePtr MakeNode(Key key, std::string_view payload) {
  return NodePtr::Adopt(new (AllocateNodeSlot()) Node(key, payload));
}

NodePtr MakeWideNode(int fanout) {
  return NodePtr::Adopt(new (AllocateNodeSlot()) Node(CreateWideExt(fanout)));
}

void NodeUnref(Node* n) {
  if (n == nullptr) return;
  if (n->refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Destroy iteratively: dropping a large state must not recurse to the
  // tree height times the cascade depth.
  std::vector<Node*> dead;
  dead.push_back(n);
  while (!dead.empty()) {
    Node* d = dead.back();
    dead.pop_back();
    const int children = d->child_count();
    for (int i = 0; i < children; ++i) {
      ChildSlot& slot = d->child_at(i);
      Node* c = slot.node_.exchange(nullptr, std::memory_order_acq_rel);
      if (c != nullptr &&
          c->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        dead.push_back(c);
      }
    }
    d->~Node();
    ReleaseNodeSlot(d);
  }
}

// --- Wide extension ---------------------------------------------------------

void WideSlot::set_payload(std::string_view p) {
  const uint32_t size = static_cast<uint32_t>(p.size());
  if (size <= kNodeInlinePayloadCap) {
    char* old_heap = heap_cap_ != 0 ? pay_.heap : nullptr;
    // Copy before freeing: `p` may alias the old heap buffer.
    if (size != 0) std::memmove(pay_.inline_buf, p.data(), size);
    if (old_heap != nullptr) {
      delete[] old_heap;
      CountPayloadHeapFree();
      heap_cap_ = 0;
    }
  } else if (heap_cap_ >= size) {
    std::memmove(pay_.heap, p.data(), size);
  } else {
    char* buf = new char[size];
    CountPayloadHeapAlloc();
    std::memcpy(buf, p.data(), size);
    if (heap_cap_ != 0) {
      delete[] pay_.heap;
      CountPayloadHeapFree();
    }
    pay_.heap = buf;
    heap_cap_ = size;
  }
  size_ = size;
}

void WideSlot::MoveFrom(WideSlot& o) {
  if (heap_cap_ != 0) {
    delete[] pay_.heap;
    CountPayloadHeapFree();
  }
  key = o.key;
  meta = o.meta;
  pay_ = o.pay_;
  size_ = o.size_;
  heap_cap_ = o.heap_cap_;
  o.size_ = 0;
  o.heap_cap_ = 0;
}

void WideSlot::CopyFrom(const WideSlot& o) {
  key = o.key;
  meta = o.meta;
  set_payload(o.payload());
}

void WideSlot::Clear() {
  set_payload({});
  key = 0;
  meta = WideSlotMeta{};
}

void WideExt::OpenSlot(int pos) {
  for (int j = count_; j > pos; --j) slots_[j].MoveFrom(slots_[j - 1]);
  for (int j = count_ + 1; j > pos + 1; --j) {
    children_[j].Reset(children_[j - 1].GetLocal());
    gap_read_[j] = gap_read_[j - 1];
  }
  children_[pos + 1].Reset(Ref::Null());
  gap_read_[pos + 1] = 0;
  slots_[pos].Clear();
  ++count_;
}

void WideExt::CloseSlot(int pos, int child_pos) {
  const uint8_t merged = gap_read_[pos] | gap_read_[pos + 1];
  for (int j = pos; j < count_ - 1; ++j) slots_[j].MoveFrom(slots_[j + 1]);
  for (int j = child_pos; j < count_; ++j) {
    children_[j].Reset(children_[j + 1].GetLocal());
    gap_read_[j] = gap_read_[j + 1];
  }
  children_[count_].Reset(Ref::Null());
  gap_read_[count_] = 0;
  slots_[count_ - 1].Clear();
  gap_read_[pos] = merged;
  --count_;
}

size_t WideExtentBytes(int cap) {
  return sizeof(WideExt) + sizeof(WideSlot) * static_cast<size_t>(cap) +
         sizeof(ChildSlot) * static_cast<size_t>(cap + 1) +
         static_cast<size_t>(cap + 1);
}

WideExt* CreateWideExt(int fanout) {
  void* block = AllocateWideExtent(fanout);
  auto* ext = new (block) WideExt();
  ext->cap_ = static_cast<uint16_t>(fanout);
  char* p = static_cast<char*>(block) + sizeof(WideExt);
  ext->slots_ = reinterpret_cast<WideSlot*>(p);
  for (int i = 0; i < fanout; ++i) new (&ext->slots_[i]) WideSlot();
  p += sizeof(WideSlot) * static_cast<size_t>(fanout);
  ext->children_ = reinterpret_cast<ChildSlot*>(p);
  for (int i = 0; i <= fanout; ++i) new (&ext->children_[i]) ChildSlot();
  p += sizeof(ChildSlot) * static_cast<size_t>(fanout + 1);
  ext->gap_read_ = reinterpret_cast<uint8_t*>(p);
  std::memset(ext->gap_read_, 0, static_cast<size_t>(fanout + 1));
  return ext;
}

void DestroyWideExt(WideExt* ext) {
  // NodeUnref already detached materialized children (iterative teardown),
  // but extents can also die before publication with edges still wired.
  for (int i = 0; i < ext->cap_; ++i) ext->slots_[i].~WideSlot();
  for (int i = 0; i <= ext->cap_; ++i) ext->children_[i].~ChildSlot();
  const int fanout = ext->cap_;
  ext->~WideExt();
  ReleaseWideExtent(ext, fanout);
}

Result<NodePtr> ChildSlot::Get(NodeResolver* resolver) const {
  Node* n = node_.load(std::memory_order_acquire);
  if (n != nullptr) return NodePtr::Share(n);
  if (vn_.IsNull()) return NodePtr();
  if (resolver == nullptr) {
    return Status::Internal("lazy reference " + vn_.ToString() +
                            " with no resolver");
  }
  HYDER_ASSIGN_OR_RETURN(NodePtr fetched, resolver->Resolve(vn_));
  if (!fetched) {
    return Status::Corruption("resolver returned null for " + vn_.ToString());
  }
  // Memoize. If another thread won the race, drop our fetch and use theirs.
  Node* expected = nullptr;
  Node* raw = fetched.get();
  NodeRef(raw);  // The slot's strong reference.
  if (node_.compare_exchange_strong(expected, raw,
                                    std::memory_order_acq_rel)) {
    return fetched;
  }
  NodeUnref(raw);  // Lost the race; release the slot's would-be reference.
  return NodePtr::Share(expected);
}

}  // namespace hyder
