#include "tree/node.h"

#include <new>
#include <vector>

#include "tree/node_pool.h"

namespace hyder {

NodePtr MakeNode(Key key, std::string_view payload) {
  return NodePtr::Adopt(new (AllocateNodeSlot()) Node(key, payload));
}

void NodeUnref(Node* n) {
  if (n == nullptr) return;
  if (n->refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Destroy iteratively: dropping a large state must not recurse to the
  // tree height times the cascade depth.
  std::vector<Node*> dead;
  dead.push_back(n);
  while (!dead.empty()) {
    Node* d = dead.back();
    dead.pop_back();
    for (ChildSlot* slot : {&d->left_, &d->right_}) {
      Node* c = slot->node_.exchange(nullptr, std::memory_order_acq_rel);
      if (c != nullptr &&
          c->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        dead.push_back(c);
      }
    }
    d->~Node();
    ReleaseNodeSlot(d);
  }
}

Result<NodePtr> ChildSlot::Get(NodeResolver* resolver) const {
  Node* n = node_.load(std::memory_order_acquire);
  if (n != nullptr) return NodePtr::Share(n);
  if (vn_.IsNull()) return NodePtr();
  if (resolver == nullptr) {
    return Status::Internal("lazy reference " + vn_.ToString() +
                            " with no resolver");
  }
  HYDER_ASSIGN_OR_RETURN(NodePtr fetched, resolver->Resolve(vn_));
  if (!fetched) {
    return Status::Corruption("resolver returned null for " + vn_.ToString());
  }
  // Memoize. If another thread won the race, drop our fetch and use theirs.
  Node* expected = nullptr;
  Node* raw = fetched.get();
  NodeRef(raw);  // The slot's strong reference.
  if (node_.compare_exchange_strong(expected, raw,
                                    std::memory_order_acq_rel)) {
    return fetched;
  }
  NodeUnref(raw);  // Lost the race; release the slot's would-be reference.
  return NodePtr::Share(expected);
}

}  // namespace hyder
