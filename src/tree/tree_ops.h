#ifndef HYDER2_TREE_TREE_OPS_H_
#define HYDER2_TREE_TREE_OPS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "tree/node.h"

namespace hyder {

/// Work counters for copy-on-write tree operations.
struct TreeOpStats {
  uint64_t nodes_visited = 0;
  uint64_t nodes_created = 0;
};

/// Deterministic allocator of ephemeral node identities (§3.4).
///
/// Every meld context (final meld thread, each premeld thread, the group
/// meld thread) owns one allocator; node identities are the two-part
/// (thread id, per-thread sequence) pairs that make ephemeral node identity
/// reproducible across servers as long as every server runs the same thread
/// configuration and melds the same inputs — which the premeld scheduling
/// rule guarantees. The optional `registrar` callback feeds the server's
/// ephemeral-node registry so later intentions can reference these nodes.
class EphemeralAllocator {
 public:
  explicit EphemeralAllocator(uint32_t thread_id, uint64_t start_seq = 0)
      : thread_id_(thread_id), next_(start_seq) {}

  /// Stamps `n` with the next ephemeral id and registers it.
  void Assign(const NodePtr& n) {
    n->set_vn(VersionId::Ephemeral(thread_id_, next_++));
    if (registrar) registrar(n);
  }

  uint32_t thread_id() const { return thread_id_; }
  uint64_t next_seq() const { return next_; }

  /// Repositions the counter. Checkpoint bootstrap uses this to continue the
  /// id sequence of the incarnation that wrote the checkpoint: ephemeral ids
  /// are part of the physical state (§3.4), so a restored server must mint
  /// the exact ids a full log replay would.
  void set_next_seq(uint64_t next) { next_ = next; }

  std::function<void(const NodePtr&)> registrar;

 private:
  uint32_t thread_id_;
  uint64_t next_;
};

/// Execution context for copy-on-write tree operations.
///
/// All mutating operations follow Hyder's copy-on-write discipline (§2,
/// Fig. 3): a node is never modified in place unless it is already owned by
/// this context (`node.owner == owner`), i.e. it was created by the same
/// in-flight transaction or meld run and is not yet visible to anyone else.
/// Foreign nodes are cloned; the clone records the provenance metadata
/// (`ssv` = source's vn, `base_cv` = source's content version) that the meld
/// algorithm later uses for conflict detection.
struct CowContext {
  /// Owner tag stamped on nodes created here.
  uint64_t owner = 0;
  /// Resolves lazy references; may be null for fully materialized trees.
  NodeResolver* resolver = nullptr;
  /// When true (serializable isolation), reads copy their search path into
  /// the result tree and annotate it (kFlagRead / kFlagSubtreeRead) so that
  /// the readset travels in the intention (§2: "its intention also contains
  /// the nodes in its readset").
  bool annotate_reads = false;
  /// Optional work counters.
  TreeOpStats* stats = nullptr;
  /// When set, CloneForWrite copies provenance (ssv/base_cv/cv) and
  /// transaction flags verbatim for nodes whose owner tag appears in this
  /// list, instead of re-deriving them from the source node. Meld-internal
  /// restructuring (tombstone application) uses this so the *intention's*
  /// readset metadata survives into meld outputs (§3.3) while base-state
  /// nodes on the same path are rebased normally (their stale flags must
  /// not leak into the output and cause false conflicts downstream).
  const std::vector<uint64_t>* preserve_owners = nullptr;
  /// When set, nodes created by this context receive deterministic
  /// ephemeral version ids at creation (meld contexts). When null, created
  /// nodes keep a null provisional vn (executor workspaces; their ids are
  /// assigned at deserialization).
  EphemeralAllocator* vn_alloc = nullptr;
  /// Slot capacity of the pages this context builds. 2 selects the binary
  /// red-black layout (the baseline); values in [3, 64] select the wide
  /// layout with that many key slots per page. Operations on a non-empty
  /// tree follow the root's actual layout — the knob only decides which
  /// layout roots an empty tree, so every server in a cluster must run the
  /// same fanout (mixed layouts inside one tree are rejected).
  int fanout = 2;
};

/// Clones `n` for mutation under `ctx` unless it is already owned by `ctx`.
/// The clone shares both child edges and records provenance metadata.
Result<NodePtr> CloneForWrite(const CowContext& ctx, const NodePtr& n);

/// Inserts or updates `key` (upsert), returning the new root. `*existed`
/// (optional) reports whether the key was already present. The resulting
/// tree satisfies the red-black invariants if the input did.
Result<Ref> TreeInsert(const CowContext& ctx, const Ref& root, Key key,
                       std::string_view payload, bool* existed);

/// Removes `key`, returning the new root. `*removed` reports presence;
/// `*removed_base_cv` (optional) receives the content version the delete
/// observed, which the intention's tombstone carries for write-write
/// conflict detection.
Result<Ref> TreeRemove(const CowContext& ctx, const Ref& root, Key key,
                       bool* removed, VersionId* removed_base_cv,
                       VersionId* removed_ssv = nullptr);

/// Point lookup. When `ctx.annotate_reads`, the search path is copied into
/// the returned root and the target is marked kFlagRead; a miss marks the
/// fall-off node kFlagSubtreeRead so that a concurrent insert of `key`
/// (a phantom) is detected. Without annotation the root passes through
/// unchanged.
Result<Ref> TreeLookup(const CowContext& ctx, const Ref& root, Key key,
                       std::optional<std::string>* payload);

/// Inclusive range scan. Appends (key, payload) pairs to `out` in key
/// order. When `ctx.annotate_reads`, boundary nodes are copied and marked
/// kFlagRead and each maximal subtree fully contained in [lo, hi] is copied
/// at its root only and marked kFlagSubtreeRead — the phantom-avoidance
/// metadata (Appendix A): any structural change under such a subtree
/// conflicts with the scan.
Result<Ref> TreeRangeScan(const CowContext& ctx, const Ref& root, Key lo,
                          Key hi,
                          std::vector<std::pair<Key, std::string>>* out);

/// Resolves `slot` through `resolver`, which may be null for materialized
/// trees. Convenience used across the library.
Result<NodePtr> ResolveChild(const ChildSlot& slot, NodeResolver* resolver);

}  // namespace hyder

#endif  // HYDER2_TREE_TREE_OPS_H_
