#include "tree/node_pool.h"

#include <atomic>
#include <new>

#include "common/arena.h"
#include "common/registry.h"
#include "tree/btree_sizer.h"
#include "tree/node.h"

namespace hyder {

namespace {

// Global counters. `live` is a single counter (not allocs - frees) so it
// is exact at any instant, as the leak tests require.
std::atomic<uint64_t> g_live{0};
std::atomic<uint64_t> g_allocated{0};
std::atomic<uint64_t> g_payload_heap_allocs{0};
std::atomic<uint64_t> g_payload_heap_frees{0};
std::atomic<uint64_t> g_wide_live{0};
std::atomic<uint64_t> g_wide_allocated{0};

#ifndef HYDER_DISABLE_NODE_POOL

/// Slots move between the shared pool and thread caches in batches of
/// this size; a cache holds at most two batches before draining one.
constexpr size_t kBatch = 64;
constexpr size_t kCacheCap = 2 * kBatch;

/// The arena is deliberately leaked: thread caches drain on thread exit,
/// which can run after static destructors on the main thread.
SlotArena& Arena() {
  static SlotArena* arena = new SlotArena(SlotArena::Options{
      sizeof(Node), alignof(Node), /*slots_per_slab=*/1024});
  return *arena;
}

struct ThreadCache {
  void* slots[kCacheCap];
  size_t n = 0;

  ~ThreadCache() { Drain(); }

  void Drain() {
    if (n > 0) {
      Arena().DeallocateBatch(slots, n);
      n = 0;
    }
  }
};

ThreadCache& Cache() {
  // Touch the arena first so it outlives every cache's destructor.
  Arena();
  thread_local ThreadCache cache;
  return cache;
}

#endif  // HYDER_DISABLE_NODE_POOL

#ifndef HYDER_DISABLE_NODE_POOL
/// Per-class extent arenas for wide nodes. Extents are rarer and larger
/// than node slots (one per wide node vs. one per key in the binary
/// layout), so they go straight to the shared arenas — no thread cache.
/// Also deliberately leaked, for the same static-destruction-order reason
/// as the node arena.
SlotArena& WideArena(int class_index) {
  static SlotArena* arenas[kWideSlabClassCount];
  static const bool init = [] {
    for (int i = 0; i < kWideSlabClassCount; ++i) {
      arenas[i] = new SlotArena(SlotArena::Options{
          WideSlabClassBytes(i), alignof(std::max_align_t),
          /*slots_per_slab=*/128});
    }
    return true;
  }();
  (void)init;
  return *arenas[class_index];
}
#endif  // HYDER_DISABLE_NODE_POOL

}  // namespace

void* AllocateNodeSlot() {
  // relaxed: monotonic arena stats counter; no ordering dependency.
  g_allocated.fetch_add(1, std::memory_order_relaxed);
  g_live.fetch_add(1, std::memory_order_relaxed);
#ifdef HYDER_DISABLE_NODE_POOL
  return ::operator new(sizeof(Node), std::align_val_t(alignof(Node)));
#else
  ThreadCache& cache = Cache();
  if (cache.n == 0) {
    cache.n = Arena().AllocateBatch(cache.slots, kBatch);
  }
  return cache.slots[--cache.n];
#endif
}

void ReleaseNodeSlot(void* slot) {
  // relaxed: monotonic arena stats counter; no ordering dependency.
  g_live.fetch_sub(1, std::memory_order_relaxed);
#ifdef HYDER_DISABLE_NODE_POOL
  ::operator delete(slot, std::align_val_t(alignof(Node)));
#else
  ThreadCache& cache = Cache();
  if (cache.n == kCacheCap) {
    // Keep one batch locally; return the other so a free-heavy thread
    // feeds an allocation-heavy one.
    Arena().DeallocateBatch(cache.slots + kBatch, kBatch);
    cache.n = kBatch;
  }
  cache.slots[cache.n++] = slot;
#endif
}

void DrainNodeArenaThreadCache() {
#ifndef HYDER_DISABLE_NODE_POOL
  Cache().Drain();
#endif
}

size_t TrimNodeArena() {
#ifndef HYDER_DISABLE_NODE_POOL
  // The calling thread's cached slots would pin their slabs; other
  // threads' caches hold at most kCacheCap slots each, an acceptable
  // remainder for a best-effort reclaim.
  Cache().Drain();
  return Arena().TrimFreeSlabs();
#else
  return 0;
#endif
}

ArenaStats NodeArenaStats() {
  ArenaStats s;
  // relaxed: stats snapshot; each counter is independently monotonic and
  // the snapshot makes no cross-counter consistency promise.
  s.live = g_live.load(std::memory_order_relaxed);
  s.allocated = g_allocated.load(std::memory_order_relaxed);
  s.payload_heap_allocs = g_payload_heap_allocs.load(std::memory_order_relaxed);
  s.payload_heap_frees = g_payload_heap_frees.load(std::memory_order_relaxed);
  s.wide_live = g_wide_live.load(std::memory_order_relaxed);
  s.wide_allocated = g_wide_allocated.load(std::memory_order_relaxed);
#ifndef HYDER_DISABLE_NODE_POOL
  SlotArena::Stats a = Arena().stats();
  s.slabs = a.slabs;
  s.slab_bytes = a.slab_bytes;
  s.slabs_released = a.slabs_released;
  s.carved = a.carved;
  s.free_shared = a.free_slots;
  // Batched refills carve slots ahead of demand, so early on `carved` can
  // exceed `allocated`; saturate to keep this a (tight) lower bound.
  s.recycled = s.allocated > a.carved ? s.allocated - a.carved : 0;
#else
  s.carved = s.allocated;  // Every allocation is a fresh malloc.
#endif
  return s;
}

namespace {
/// Process-lifetime "arena.*" provider: the arena is global, so unlike the
/// per-object server/log providers this one registers once and never
/// unregisters (the handle lives for the life of the process alongside the
/// registry). The pointer is kept in a function-local static so it stays
/// reachable at exit: a namespace-scope const pointer that is never read
/// gets its storage dropped by the optimizer, and LeakSanitizer then
/// reports the (deliberate) allocation as a direct leak.
const ProviderHandle& ArenaMetricsProvider() {
  static const ProviderHandle* const handle =
      new ProviderHandle(MetricsRegistry::Global().RegisterProvider(
          "arena", [](const MetricsRegistry::Emit& emit) {
            NodeArenaStats().EmitTo("", emit);
          }));
  return *handle;
}
[[maybe_unused]] const ProviderHandle& g_arena_metrics =
    ArenaMetricsProvider();
}  // namespace

void CountPayloadHeapAlloc() {
  // relaxed: monotonic arena stats counter; no ordering dependency.
  g_payload_heap_allocs.fetch_add(1, std::memory_order_relaxed);
}

void CountPayloadHeapFree() {
  // relaxed: monotonic arena stats counter; no ordering dependency.
  g_payload_heap_frees.fetch_add(1, std::memory_order_relaxed);
}

void* AllocateWideExtent(int fanout) {
  // relaxed: monotonic arena stats counter; no ordering dependency.
  g_wide_allocated.fetch_add(1, std::memory_order_relaxed);
  g_wide_live.fetch_add(1, std::memory_order_relaxed);
#ifdef HYDER_DISABLE_NODE_POOL
  return ::operator new(WideSlabClassBytes(WideSlabClassIndex(fanout)),
                        std::align_val_t(alignof(std::max_align_t)));
#else
  void* block = nullptr;
  WideArena(WideSlabClassIndex(fanout)).AllocateBatch(&block, 1);
  return block;
#endif
}

void ReleaseWideExtent(void* extent, int fanout) {
  // relaxed: monotonic arena stats counter; no ordering dependency.
  g_wide_live.fetch_sub(1, std::memory_order_relaxed);
#ifdef HYDER_DISABLE_NODE_POOL
  (void)fanout;
  ::operator delete(extent, std::align_val_t(alignof(std::max_align_t)));
#else
  WideArena(WideSlabClassIndex(fanout)).DeallocateBatch(&extent, 1);
#endif
}

// relaxed: monotonic-pair counter read for leak tests at quiesce points.
uint64_t LiveNodeCount() { return g_live.load(std::memory_order_relaxed); }

}  // namespace hyder
