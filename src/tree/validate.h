#ifndef HYDER2_TREE_VALIDATE_H_
#define HYDER2_TREE_VALIDATE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "tree/node.h"

namespace hyder {

/// Structural facts about a tree, produced by `ValidateTree`.
struct TreeCheck {
  uint64_t node_count = 0;
  uint32_t height = 0;
  int black_height = 0;  ///< -1 when the black-height invariant is violated.
                         ///< Always 0 for wide-layout trees.
  bool bst_ok = false;
  bool rb_ok = false;  ///< Layout invariants. Binary: red-black (root black,
                       ///< no red-red, equal black heights). Wide: every
                       ///< reachable page holds 1..cap sorted slots and no
                       ///< binary node appears below a wide page.
  bool wide = false;   ///< The root (and hence the tree) uses the wide layout.
  bool olc_stable = true;  ///< Every node's OLC version word was even (no
                           ///< writer mid-mutation) when visited.
};

/// Walks the whole tree checking key ordering and the layout's structural
/// invariants (red-black for binary trees, page-shape for wide trees).
/// Resolves lazy edges through `resolver` (may be null for materialized
/// trees). Intended for tests; cost is O(n).
Result<TreeCheck> ValidateTree(NodeResolver* resolver, const Ref& root);

/// In-order dump of (key, payload) pairs.
Status TreeCollect(NodeResolver* resolver, const Ref& root,
                   std::vector<std::pair<Key, std::string>>* out);

/// Counts nodes reachable from `root`.
Result<uint64_t> TreeCount(NodeResolver* resolver, const Ref& root);

/// Renders the tree as an indented multi-line string (debugging aid).
Result<std::string> TreeToString(NodeResolver* resolver, const Ref& root);

}  // namespace hyder

#endif  // HYDER2_TREE_VALIDATE_H_
