#ifndef HYDER2_TREE_VALIDATE_H_
#define HYDER2_TREE_VALIDATE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "tree/node.h"

namespace hyder {

/// Structural facts about a tree, produced by `ValidateTree`.
struct TreeCheck {
  uint64_t node_count = 0;
  uint32_t height = 0;
  int black_height = 0;  ///< -1 when the black-height invariant is violated.
  bool bst_ok = false;
  bool rb_ok = false;  ///< Red-black invariants (root black, no red-red,
                       ///< equal black heights).
};

/// Walks the whole tree checking BST ordering and red-black invariants.
/// Resolves lazy edges through `resolver` (may be null for materialized
/// trees). Intended for tests; cost is O(n).
Result<TreeCheck> ValidateTree(NodeResolver* resolver, const Ref& root);

/// In-order dump of (key, payload) pairs.
Status TreeCollect(NodeResolver* resolver, const Ref& root,
                   std::vector<std::pair<Key, std::string>>* out);

/// Counts nodes reachable from `root`.
Result<uint64_t> TreeCount(NodeResolver* resolver, const Ref& root);

/// Renders the tree as an indented multi-line string (debugging aid).
Result<std::string> TreeToString(NodeResolver* resolver, const Ref& root);

}  // namespace hyder

#endif  // HYDER2_TREE_VALIDATE_H_
