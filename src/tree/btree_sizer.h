#ifndef HYDER2_TREE_BTREE_SIZER_H_
#define HYDER2_TREE_BTREE_SIZER_H_

#include <cstdint>
#include <vector>

#include "tree/node.h"

namespace hyder {

/// Ablation support for the paper's index-structure choice (§2, §5):
/// "since it operates on main memory structures and is serialized to a
/// sequential log (rather than written out in fixed-size pages), a binary
/// tree consumes less storage per record than a B-tree. So we use binary
/// trees." — copy-on-write must rewrite every node on the root path, and a
/// B-tree node carries F keys (and, at the leaves, F payloads), so each
/// copied level costs ~F times more bytes than a binary node.
///
/// This class models a bulk-loaded B-tree over a dense key space and
/// computes the serialized size of the COW intention a transaction's write
/// set would produce. It is a sizing model, not a full B-tree runtime: the
/// meld algorithm itself stays binary, exactly as in the paper.
class CowBtreeSizer {
 public:
  /// `fanout` = maximum entries per node; nodes are bulk-loaded ~85% full.
  CowBtreeSizer(uint64_t db_size, int fanout, size_t key_bytes,
                size_t payload_bytes);

  /// Serialized bytes of the intention produced by a transaction that
  /// updates `write_keys` (union of root-to-leaf path copies).
  uint64_t IntentionBytes(const std::vector<Key>& write_keys) const;

  /// The binary-tree equivalent for the same writes (path copies in a
  /// balanced binary tree with per-node metadata as in txn/codec.cc).
  /// `payload_by_reference` models the production encoding for large
  /// payloads, where an unaltered path copy carries only the content
  /// version (a reference into the log) instead of the payload bytes —
  /// without it, a deep path of large inline payloads would dominate the
  /// intention, which is incompatible with the paper's ~2 blocks per
  /// intention at 1KB payloads (§6.4.1 discussion of Fig. 12).
  uint64_t BinaryIntentionBytes(const std::vector<Key>& write_keys,
                                bool payload_by_reference = true) const;

  int height() const { return height_; }
  uint64_t leaf_count() const { return leaves_; }
  uint64_t entries_per_leaf() const { return entries_per_leaf_; }

 private:
  uint64_t db_size_;
  int fanout_;
  size_t key_bytes_;
  size_t payload_bytes_;
  int height_ = 1;                  ///< Levels including the leaf level.
  uint64_t leaves_ = 1;
  std::vector<uint64_t> level_width_;  ///< Nodes per level, root first.
  uint64_t entries_per_leaf_;
};

/// Wide-node slab-class selection (the runtime counterpart of the sizing
/// model above, shared with tree/node_pool): requested fanouts round up to
/// one of these slot capacities, so every wide extent comes from one of
/// `kWideSlabClassCount` fixed-slot-size arenas regardless of the fanout
/// mix a process runs with.
inline constexpr int kWideSlabClassCaps[] = {16, 32, 64};
inline constexpr int kWideSlabClassCount = 3;

/// The class index for a requested fanout. Fanouts must be in
/// [3, kWideSlabClassCaps[last]]; 2 is the binary layout, not a wide class.
int WideSlabClassIndex(int fanout);
/// The slot capacity of that class (the rounded-up fanout).
int WideSlabClassCap(int fanout);
/// Extent bytes of one block in class `class_index` — the arena's slot
/// size (WideExtentBytes of the class capacity).
size_t WideSlabClassBytes(int class_index);

}  // namespace hyder

#endif  // HYDER2_TREE_BTREE_SIZER_H_
