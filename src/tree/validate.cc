#include "tree/validate.h"

#include <algorithm>
#include <optional>

namespace hyder {

namespace {

struct WalkState {
  NodeResolver* resolver;
  TreeCheck check;
  std::optional<Key> last_key;
  bool order_violation = false;
};

/// Returns the subtree's black height, or -1 on any red-black violation.
Result<int> Walk(WalkState& st, const NodePtr& n, uint32_t depth,
                 bool parent_red) {
  if (!n) return 1;  // Null leaves are black.
  if (n->is_wide()) {
    return Status::Internal("wide page below a binary node (mixed layouts)");
  }
  st.check.node_count++;
  st.check.height = std::max(st.check.height, depth);
  if ((n->olc_version() & 1) != 0) st.check.olc_stable = false;
  const bool red = n->color() == Color::kRed;
  bool violated = parent_red && red;

  HYDER_ASSIGN_OR_RETURN(NodePtr l, n->left().Get(st.resolver));
  if (l && l->key() >= n->key()) st.order_violation = true;
  HYDER_ASSIGN_OR_RETURN(int bh_left, Walk(st, l, depth + 1, red));

  if (st.last_key.has_value() && *st.last_key >= n->key()) {
    st.order_violation = true;
  }
  st.last_key = n->key();

  HYDER_ASSIGN_OR_RETURN(NodePtr r, n->right().Get(st.resolver));
  if (r && r->key() <= n->key()) st.order_violation = true;
  HYDER_ASSIGN_OR_RETURN(int bh_right, Walk(st, r, depth + 1, red));

  if (violated || bh_left < 0 || bh_right < 0 || bh_left != bh_right) {
    return -1;
  }
  return bh_left + (red ? 0 : 1);
}

/// Wide-layout walk: in-order key check plus page-shape invariants (every
/// reachable page keeps 1..cap sorted slots; preemptive splitting guarantees
/// this even mid-transaction) and the OLC stability probe.
Status WalkWide(WalkState& st, const NodePtr& n, uint32_t depth,
                bool* page_violation) {
  if (!n) return Status::OK();
  if (!n->is_wide()) {
    return Status::Internal("binary node below a wide page (mixed layouts)");
  }
  st.check.node_count++;
  st.check.height = std::max(st.check.height, depth);
  if ((n->olc_version() & 1) != 0) st.check.olc_stable = false;
  const WideExt& e = *n->wide();
  if (e.count() < 1 || e.count() > e.cap()) *page_violation = true;
  for (int i = 0; i <= e.count(); ++i) {
    HYDER_ASSIGN_OR_RETURN(NodePtr c, e.child(i).Get(st.resolver));
    HYDER_RETURN_IF_ERROR(WalkWide(st, c, depth + 1, page_violation));
    if (i == e.count()) break;
    if (st.last_key.has_value() && *st.last_key >= e.slot(i).key) {
      st.order_violation = true;
    }
    st.last_key = e.slot(i).key;
  }
  return Status::OK();
}

}  // namespace

Result<TreeCheck> ValidateTree(NodeResolver* resolver, const Ref& root) {
  WalkState st{resolver, TreeCheck{}, std::nullopt, false};
  NodePtr r = root.node;
  if (!r && !root.vn.IsNull()) {
    if (resolver == nullptr) {
      return Status::Internal("lazy root with no resolver");
    }
    HYDER_ASSIGN_OR_RETURN(r, resolver->Resolve(root.vn));
  }
  if (r && r->is_wide()) {
    st.check.wide = true;
    bool page_violation = false;
    HYDER_RETURN_IF_ERROR(WalkWide(st, r, 1, &page_violation));
    st.check.bst_ok = !st.order_violation;
    st.check.black_height = 0;
    st.check.rb_ok = !page_violation;
    return st.check;
  }
  const bool root_black = !r || r->color() == Color::kBlack;
  HYDER_ASSIGN_OR_RETURN(int bh, Walk(st, r, 1, false));
  st.check.bst_ok = !st.order_violation;
  st.check.black_height = bh;
  st.check.rb_ok = root_black && bh >= 0;
  return st.check;
}

namespace {
Status CollectRec(NodeResolver* resolver, const NodePtr& n,
                  std::vector<std::pair<Key, std::string>>* out) {
  if (!n) return Status::OK();
  if (n->is_wide()) {
    const WideExt& e = *n->wide();
    for (int i = 0; i <= e.count(); ++i) {
      HYDER_ASSIGN_OR_RETURN(NodePtr c, e.child(i).Get(resolver));
      HYDER_RETURN_IF_ERROR(CollectRec(resolver, c, out));
      if (i == e.count()) break;
      out->emplace_back(e.slot(i).key, std::string(e.slot(i).payload()));
    }
    return Status::OK();
  }
  HYDER_ASSIGN_OR_RETURN(NodePtr l, n->left().Get(resolver));
  HYDER_RETURN_IF_ERROR(CollectRec(resolver, l, out));
  out->emplace_back(n->key(), n->payload());
  HYDER_ASSIGN_OR_RETURN(NodePtr r, n->right().Get(resolver));
  return CollectRec(resolver, r, out);
}
}  // namespace

Status TreeCollect(NodeResolver* resolver, const Ref& root,
                   std::vector<std::pair<Key, std::string>>* out) {
  NodePtr r = root.node;
  if (!r && !root.vn.IsNull()) {
    if (resolver == nullptr) {
      return Status::Internal("lazy root with no resolver");
    }
    HYDER_ASSIGN_OR_RETURN(r, resolver->Resolve(root.vn));
  }
  return CollectRec(resolver, r, out);
}

Result<uint64_t> TreeCount(NodeResolver* resolver, const Ref& root) {
  HYDER_ASSIGN_OR_RETURN(TreeCheck check, ValidateTree(resolver, root));
  return check.node_count;
}

namespace {
Status ToStringRec(NodeResolver* resolver, const NodePtr& n, int indent,
                   std::string* out) {
  if (!n) return Status::OK();
  if (n->is_wide()) {
    const WideExt& e = *n->wide();
    // Reverse in-order, matching the binary rendering's orientation.
    for (int i = e.count(); i >= 0; --i) {
      HYDER_ASSIGN_OR_RETURN(NodePtr c, e.child(i).Get(resolver));
      HYDER_RETURN_IF_ERROR(ToStringRec(resolver, c, indent + 2, out));
      if (i == 0) break;
      out->append(indent, ' ');
      out->append(std::to_string(e.slot(i - 1).key));
      out->append("(W) ");
      out->append(n->vn().ToString());
      out->append("\n");
    }
    return Status::OK();
  }
  HYDER_ASSIGN_OR_RETURN(NodePtr r, n->right().Get(resolver));
  HYDER_RETURN_IF_ERROR(ToStringRec(resolver, r, indent + 2, out));
  out->append(indent, ' ');
  out->append(std::to_string(n->key()));
  out->append(n->color() == Color::kRed ? "(R)" : "(B)");
  out->append(" ");
  out->append(n->vn().ToString());
  out->append("\n");
  HYDER_ASSIGN_OR_RETURN(NodePtr l, n->left().Get(resolver));
  return ToStringRec(resolver, l, indent + 2, out);
}
}  // namespace

Result<std::string> TreeToString(NodeResolver* resolver, const Ref& root) {
  std::string out;
  NodePtr r = root.node;
  if (!r && !root.vn.IsNull()) {
    if (resolver == nullptr) {
      return Status::Internal("lazy root with no resolver");
    }
    HYDER_ASSIGN_OR_RETURN(r, resolver->Resolve(root.vn));
  }
  HYDER_RETURN_IF_ERROR(ToStringRec(resolver, r, 0, &out));
  return out;
}

}  // namespace hyder
