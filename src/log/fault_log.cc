#include "log/fault_log.h"

#include <string>
#include <utility>

namespace hyder {

FaultInjectingLog::FaultInjectingLog(SharedLog* base,
                                     FaultInjectionOptions options)
    : base_(base), options_(options), rng_(options.seed) {
  metrics_ = MetricsRegistry::Global().RegisterProvider(
      "log.fault", [this](const MetricsRegistry::Emit& emit) {
        EmitLogStats(stats(), emit);
        const FaultCounts c = fault_counts();
        emit("append_failures", double(c.append_failures));
        emit("duplicate_appends", double(c.duplicate_appends));
        emit("torn_appends", double(c.torn_appends));
        emit("read_failures", double(c.read_failures));
        emit("dataloss_reads", double(c.dataloss_reads));
        emit("latency_spikes", double(c.latency_spikes));
      });
}

void FaultInjectingLog::MaybeInjectLatencyLocked() {
  if (options_.latency_p <= 0 || !rng_.Bernoulli(options_.latency_p)) return;
  counts_.latency_spikes++;
  if (options_.latency_hook) options_.latency_hook(options_.latency_nanos);
}

Result<uint64_t> FaultInjectingLog::Append(std::string block) {
  MutexLock lock(mu_);
  MaybeInjectLatencyLocked();
  if (forced_append_skip_ > 0) {
    forced_append_skip_--;
  } else if (forced_append_failures_ > 0) {
    forced_append_failures_--;
    stats_.errors++;
    return Status::Internal("append failed (forced outage); nothing landed");
  }
  // One uniform draw partitioned by cumulative probability keeps the fault
  // schedule a pure function of (seed, operation index).
  double d = rng_.NextDouble();
  if (d < options_.append_fail_p) {
    counts_.append_failures++;
    stats_.errors++;
    return Status::Unavailable("append failed (injected); nothing landed");
  }
  d -= options_.append_fail_p;
  if (d < options_.append_duplicate_p) {
    // The block lands, but the ack is lost: the ambiguous-append case.
    Result<uint64_t> landed = base_->Append(block);
    if (!landed.ok()) return landed;
    counts_.duplicate_appends++;
    stats_.errors++;
    return Status::Unavailable(
        "append acknowledgement lost (injected); block landed at position " +
        std::to_string(*landed));
  }
  d -= options_.append_duplicate_p;
  if (d < options_.append_torn_p && block.size() > 1) {
    // A strict, non-empty prefix lands. It cannot decode as a complete
    // block, so consumers skip it; the caller retries the full block.
    const size_t torn_len = 1 + rng_.Uniform(block.size() - 1);
    Result<uint64_t> landed = base_->Append(block.substr(0, torn_len));
    if (!landed.ok()) return landed;
    counts_.torn_appends++;
    stats_.errors++;
    return Status::Unavailable(
        "torn append (injected): " + std::to_string(torn_len) + " of " +
        std::to_string(block.size()) + " bytes landed at position " +
        std::to_string(*landed));
  }
  Result<uint64_t> r = base_->Append(std::move(block));
  if (r.ok()) {
    stats_.appends++;
  } else {
    stats_.errors++;
  }
  return r;
}

Result<std::string> FaultInjectingLog::Read(uint64_t position) {
  MutexLock lock(mu_);
  MaybeInjectLatencyLocked();
  if (decayed_.count(position) != 0) {
    counts_.dataloss_reads++;
    stats_.errors++;
    return Status::DataLoss("stored bytes decayed at position " +
                            std::to_string(position) + " (injected)");
  }
  double d = rng_.NextDouble();
  if (d < options_.read_fail_p) {
    counts_.read_failures++;
    stats_.errors++;
    return Status::Unavailable("read failed (injected) at position " +
                               std::to_string(position));
  }
  d -= options_.read_fail_p;
  if (d < options_.read_dataloss_p && position != 0 &&
      position < base_->Tail()) {
    decayed_.insert(position);
    counts_.dataloss_reads++;
    stats_.errors++;
    return Status::DataLoss("stored bytes decayed at position " +
                            std::to_string(position) + " (injected)");
  }
  Result<std::string> r = base_->Read(position);
  if (r.ok()) {
    stats_.reads++;
  } else {
    stats_.errors++;
  }
  return r;
}

void FaultInjectingLog::RecordRetry() {
  {
    MutexLock lock(mu_);
    stats_.retries++;
  }
  base_->RecordRetry();
}

LogStats FaultInjectingLog::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void FaultInjectingLog::CorruptPosition(uint64_t position) {
  MutexLock lock(mu_);
  decayed_.insert(position);
}

void FaultInjectingLog::FailNextAppends(uint64_t n, uint64_t after) {
  MutexLock lock(mu_);
  forced_append_skip_ += after;
  forced_append_failures_ += n;
}

Status FaultInjectingLog::Truncate(uint64_t low_water_position) {
  Status s = base_->Truncate(low_water_position);
  MutexLock lock(mu_);
  if (s.ok()) {
    // Mirror the base's counters so "log.fault.*" (what chaos runs export)
    // carries the mark even when the base log is not separately registered.
    const uint64_t new_mark = base_->LowWaterMark();
    if (new_mark > stats_.low_water) {
      stats_.truncations++;
      stats_.truncated_blocks += new_mark - stats_.low_water;
      stats_.low_water = new_mark;
    }
  } else {
    stats_.errors++;
  }
  return s;
}

FaultInjectingLog::FaultCounts FaultInjectingLog::fault_counts() const {
  MutexLock lock(mu_);
  return counts_;
}

}  // namespace hyder
