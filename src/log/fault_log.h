#ifndef HYDER2_LOG_FAULT_LOG_H_
#define HYDER2_LOG_FAULT_LOG_H_

#include <functional>
#include <unordered_set>

#include "common/random.h"
#include "common/registry.h"
#include "common/thread_annotations.h"
#include "log/shared_log.h"

namespace hyder {

/// Fault taxonomy knobs. Probabilities are per-operation and drawn from one
/// deterministic, explicitly seeded `Rng`, so a (seed, call-sequence) pair
/// always injects the same faults — the recovery harness replays identical
/// fault schedules across runs and asserts the cluster still converges.
struct FaultInjectionOptions {
  uint64_t seed = 1;

  /// Append fails with `Unavailable`; nothing lands in the log.
  double append_fail_p = 0;
  /// Append lands in the log but the acknowledgement is "lost": the caller
  /// sees `Unavailable` and will typically retry, landing a second copy —
  /// the duplicate-append ambiguity every shared-log client must survive
  /// (dedup at meld time via the intention's (server id, local seq)).
  double append_duplicate_p = 0;
  /// A torn write: a strict prefix of the block lands, `Unavailable` is
  /// reported. The prefix can never decode as a complete block (its header
  /// advertises more payload bytes than the prefix holds), so tailing
  /// servers skip it deterministically.
  double append_torn_p = 0;
  /// Read fails with `Unavailable` (transient; a retry may succeed).
  double read_fail_p = 0;
  /// The position's stored bytes decay permanently: this and every later
  /// read of the position fails with `DataLoss` (sticky, as a real medium
  /// error would be).
  double read_dataloss_p = 0;
  /// A latency spike of `latency_nanos` is injected (both paths).
  double latency_p = 0;
  uint64_t latency_nanos = 2'000'000;
  /// Receives injected delays; null = the spike is only counted. Wire a
  /// `SimClock` advance in benches or a real sleep in soak tests.
  std::function<void(uint64_t nanos)> latency_hook;
};

/// Deterministic fault-injecting decorator over any `SharedLog` (§2: the
/// log is the database's only persistent representation, so log faults are
/// *the* fault model that matters). Wrap the real log, point servers at the
/// wrapper, and every append/read site in the system gets exercised against
/// transient unavailability, lost acks, torn writes, decayed bytes and
/// latency spikes — without touching the underlying implementation.
class FaultInjectingLog : public SharedLog {
 public:
  /// `base` must outlive this wrapper; the wrapper takes no ownership.
  FaultInjectingLog(SharedLog* base, FaultInjectionOptions options);

  Result<uint64_t> Append(std::string block) EXCLUDES(mu_) override;
  Result<std::string> Read(uint64_t position) EXCLUDES(mu_) override;
  uint64_t Tail() const override { return base_->Tail(); }
  size_t block_size() const override { return base_->block_size(); }
  void RecordRetry() EXCLUDES(mu_) override;
  /// Forwarded to the base log; counted (truncations/low_water) in this
  /// wrapper's stats too so chaos runs export the mark via "log.fault.*".
  Status Truncate(uint64_t low_water_position) EXCLUDES(mu_) override;
  uint64_t LowWaterMark() const override { return base_->LowWaterMark(); }
  LogStats stats() const EXCLUDES(mu_) override;

  /// Forces `position` into the decayed set: every subsequent read fails
  /// with `DataLoss`. For tests that need a corrupt block at an exact spot.
  void CorruptPosition(uint64_t position) EXCLUDES(mu_);

  /// Arms a deterministic outage: after `after` more successful appends,
  /// the next `n` appends fail with a non-transient `Internal` error (no
  /// retry can save them) and nothing lands in the base log. This is the
  /// mid-checkpoint-crash lever: arming with `after > 0` before a
  /// checkpoint write lands a strict prefix of its blocks and then kills
  /// the writer, leaving a partial checkpoint that recovery must skip.
  void FailNextAppends(uint64_t n, uint64_t after = 0) EXCLUDES(mu_);

  /// Per-fault-kind injection counts.
  struct FaultCounts {
    uint64_t append_failures = 0;
    uint64_t duplicate_appends = 0;
    uint64_t torn_appends = 0;
    uint64_t read_failures = 0;
    uint64_t dataloss_reads = 0;
    uint64_t latency_spikes = 0;
  };
  FaultCounts fault_counts() const EXCLUDES(mu_);

 private:
  void MaybeInjectLatencyLocked() REQUIRES(mu_);

  SharedLog* const base_;
  const FaultInjectionOptions options_;
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  uint64_t forced_append_failures_ GUARDED_BY(mu_) = 0;
  uint64_t forced_append_skip_ GUARDED_BY(mu_) = 0;
  std::unordered_set<uint64_t> decayed_ GUARDED_BY(mu_);
  LogStats stats_ GUARDED_BY(mu_);
  FaultCounts counts_ GUARDED_BY(mu_);
  /// "log.fault.*" (LogStats + per-fault-kind injection counts) in the
  /// global MetricsRegistry (declared last: the provider reads the guarded
  /// counters and must unregister first).
  ProviderHandle metrics_;
};

}  // namespace hyder

#endif  // HYDER2_LOG_FAULT_LOG_H_
