#include "log/striped_log.h"

namespace hyder {

StripedLog::StripedLog(StripedLogOptions options) : options_(options) {
  units_.resize(options_.storage_units < 1 ? 1 : options_.storage_units);
  metrics_ = MetricsRegistry::Global().RegisterProvider(
      "log.striped", [this](const MetricsRegistry::Emit& emit) {
        EmitLogStats(stats(), emit);
      });
}

Result<uint64_t> StripedLog::Append(std::string block) {
  if (block.size() > options_.block_size) {
    MutexLock lock(mu_);
    stats_.errors++;
    return Status::InvalidArgument("block exceeds the configured block size");
  }
  MutexLock lock(mu_);
  const uint64_t pos = tail_++;
  StorageUnit& unit = units_[(pos - 1) % units_.size()];
  unit.bytes += block.size();
  stats_.appends++;
  stats_.bytes_appended += block.size();
  unit.blocks.push_back(std::move(block));
  return pos;
}

Result<std::string> StripedLog::Read(uint64_t position) {
  MutexLock lock(mu_);
  if (position == 0 || position >= tail_) {
    stats_.errors++;
    return Status::NotFound("log position " + std::to_string(position) +
                            " past tail " + std::to_string(tail_));
  }
  if (position < low_water_) {
    return Status::Truncated("log position " + std::to_string(position) +
                             " below low-water mark " +
                             std::to_string(low_water_));
  }
  stats_.reads++;
  const StorageUnit& unit = units_[(position - 1) % units_.size()];
  return unit.blocks[(position - 1) / units_.size()];
}

Status StripedLog::Truncate(uint64_t low_water_position) {
  MutexLock lock(mu_);
  if (low_water_position <= low_water_) return Status::OK();  // Monotone.
  if (low_water_position >= tail_) {
    return Status::InvalidArgument(
        "truncation point " + std::to_string(low_water_position) +
        " at or past tail " + std::to_string(tail_) +
        ": the anchoring checkpoint must stay readable");
  }
  for (uint64_t pos = low_water_; pos < low_water_position; ++pos) {
    StorageUnit& unit = units_[(pos - 1) % units_.size()];
    std::string& block = unit.blocks[(pos - 1) / units_.size()];
    unit.bytes -= block.size();
    // shrink_to_fit via swap: clear() alone keeps the heap allocation.
    std::string().swap(block);
  }
  stats_.truncations++;
  stats_.truncated_blocks += low_water_position - low_water_;
  low_water_ = low_water_position;
  stats_.low_water = low_water_;
  return Status::OK();
}

uint64_t StripedLog::LowWaterMark() const {
  MutexLock lock(mu_);
  return low_water_;
}

uint64_t StripedLog::RetainedBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const StorageUnit& unit : units_) total += unit.bytes;
  return total;
}

uint64_t StripedLog::Tail() const {
  MutexLock lock(mu_);
  return tail_;
}

void StripedLog::RecordRetry() {
  MutexLock lock(mu_);
  stats_.retries++;
}

LogStats StripedLog::stats() const {
  // Snapshot under mu_: the counters are only ever mutated under the same
  // mutex, so callers get an internally consistent view.
  MutexLock lock(mu_);
  return stats_;
}

uint64_t StripedLog::UnitBytes(int unit) const {
  MutexLock lock(mu_);
  return units_[unit].bytes;
}

}  // namespace hyder
