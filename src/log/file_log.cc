#include "log/file_log.h"

#include <unistd.h>

#include <cstring>
#include <memory>

#include "common/varint.h"

namespace hyder {

Result<std::unique_ptr<FileLog>> FileLog::Open(const std::string& path,
                                               Options options) {
  if (options.block_size < 64) {
    return Status::InvalidArgument("block size too small for a file log");
  }
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) {
    return Status::Internal("cannot open log file " + path);
  }
  // Recover the tail: scan slot headers until the first unwritten slot.
  const size_t slot = options.block_size + 4;
  uint64_t tail = 1;
  for (;;) {
    if (std::fseek(file, long((tail - 1) * slot), SEEK_SET) != 0) break;
    char header[4];
    if (std::fread(header, 1, 4, file) != 4) break;
    const uint32_t len = DecodeFixed32(header);
    if (len == 0 || len > options.block_size) break;
    // Verify the slot body is fully present (guards a torn final write).
    if (std::fseek(file, long((tail - 1) * slot + 4 + len - 1), SEEK_SET) !=
            0 ||
        std::fgetc(file) == EOF) {
      break;
    }
    tail++;
  }
  return std::unique_ptr<FileLog>(new FileLog(file, options, tail));
}

FileLog::FileLog(std::FILE* file, Options options, uint64_t tail)
    : options_(options), file_(file), tail_(tail) {}

FileLog::~FileLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<uint64_t> FileLog::Append(std::string block) {
  if (block.size() > options_.block_size) {
    return Status::InvalidArgument("block exceeds the configured block size");
  }
  if (block.empty()) {
    return Status::InvalidArgument("empty blocks are not valid log entries");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t pos = tail_;
  std::string slot;
  slot.reserve(SlotSize());
  PutFixed32(&slot, static_cast<uint32_t>(block.size()));
  slot.append(block);
  slot.resize(SlotSize(), '\0');
  if (std::fseek(file_, long((pos - 1) * SlotSize()), SEEK_SET) != 0 ||
      std::fwrite(slot.data(), 1, slot.size(), file_) != slot.size()) {
    return Status::Internal("log append I/O failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("log flush failed");
  }
  if (options_.sync_each_append) {
    if (fdatasync(fileno(file_)) != 0) {
      return Status::Internal("log fdatasync failed");
    }
  }
  tail_++;
  stats_.appends++;
  stats_.bytes_appended += block.size();
  return pos;
}

Result<std::string> FileLog::Read(uint64_t position) {
  std::lock_guard<std::mutex> lock(mu_);
  if (position == 0 || position >= tail_) {
    return Status::NotFound("log position " + std::to_string(position) +
                            " past tail " + std::to_string(tail_));
  }
  char header[4];
  if (std::fseek(file_, long((position - 1) * SlotSize()), SEEK_SET) != 0 ||
      std::fread(header, 1, 4, file_) != 4) {
    return Status::Internal("log read I/O failed (header)");
  }
  const uint32_t len = DecodeFixed32(header);
  if (len == 0 || len > options_.block_size) {
    return Status::Corruption("bad slot length at position " +
                              std::to_string(position));
  }
  std::string block(len, '\0');
  if (std::fread(block.data(), 1, len, file_) != len) {
    return Status::Internal("log read I/O failed (body)");
  }
  stats_.reads++;
  return block;
}

uint64_t FileLog::Tail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_;
}

LogStats FileLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hyder
