#include "log/file_log.h"

#include <unistd.h>

#include <cstring>
#include <memory>

#ifdef __linux__
#include <fcntl.h>
#include <linux/falloc.h>
#endif

#include "common/crc32c.h"
#include "common/varint.h"

namespace hyder {

namespace {

/// Reads the 4-byte length word of `slot_index` (0-based). Returns false on
/// seek/read failure (EOF past the last slot).
bool ReadLengthWord(std::FILE* file, size_t slot_size, uint64_t slot_index,
                    uint32_t* raw) {
  char header[4];
  if (std::fseek(file, static_cast<long>(slot_index * slot_size),
                 SEEK_SET) != 0 ||
      std::fread(header, 1, 4, file) != 4) {
    return false;
  }
  *raw = DecodeFixed32(header);
  return true;
}

/// Sidecar layout: [u32 magic][u32 format_v2][u32 lwm_lo][u32 lwm_hi]
/// [u32 crc32c(first 16 bytes)] — 20 bytes, rewritten atomically via
/// tmp+rename on every truncation.
constexpr size_t kSidecarSize = 20;

std::string SidecarPath(const std::string& path) { return path + ".lwm"; }

void EncodeSidecar(std::string* out, bool format_v2, uint64_t low_water) {
  PutFixed32(out, FileLog::kLwmMagic);
  PutFixed32(out, format_v2 ? 1u : 0u);
  PutFixed32(out, static_cast<uint32_t>(low_water));
  PutFixed32(out, static_cast<uint32_t>(low_water >> 32));
  PutFixed32(out, Crc32c(out->data(), 16));
}

/// Reads `<path>.lwm` if present. Returns false (no error) when the sidecar
/// does not exist; Corruption when it exists but fails validation — a
/// half-written mark must stop recovery rather than resurrect a reclaimed
/// prefix as garbage.
Result<bool> ReadSidecar(const std::string& path, bool* format_v2,
                         uint64_t* low_water) {
  std::FILE* f = std::fopen(SidecarPath(path).c_str(), "rb");
  if (f == nullptr) return false;
  char buf[kSidecarSize];
  const size_t n = std::fread(buf, 1, kSidecarSize, f);
  std::fclose(f);
  if (n != kSidecarSize || DecodeFixed32(buf) != FileLog::kLwmMagic ||
      DecodeFixed32(buf + 16) != Crc32c(buf, 16)) {
    return Status::Corruption("invalid low-water sidecar " +
                              SidecarPath(path));
  }
  *format_v2 = DecodeFixed32(buf + 4) != 0;
  *low_water = uint64_t(DecodeFixed32(buf + 8)) |
               (uint64_t(DecodeFixed32(buf + 12)) << 32);
  if (*low_water == 0) {
    return Status::Corruption("low-water sidecar holds position 0");
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<FileLog>> FileLog::Open(const std::string& path,
                                               Options options) {
  if (options.block_size < 64) {
    return Status::InvalidArgument("block size too small for a file log");
  }
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) {
    return Status::Internal("cannot open log file " + path);
  }
  // One stat for the recovery bound: only complete slots can hold recovered
  // blocks; a trailing partial slot is a torn (never acknowledged) final
  // append and is ignored — the next append overwrites it.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::Internal("cannot stat log file " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(std::ftell(file));

  // A truncated log's authoritative state lives in the sidecar: once the
  // prefix is hole-punched, slot 0 reads as zeros, so both the format flag
  // and the first walkable slot must come from it.
  bool format_v2 = true;
  uint64_t low_water = 1;
  bool have_sidecar = false;
  {
    auto sc = ReadSidecar(path, &format_v2, &low_water);
    if (!sc.ok()) {
      std::fclose(file);
      return sc.status();
    }
    have_sidecar = sc.value();
  }

  // Without a sidecar, sniff the slot format from the first length word: v2
  // sets the high bit. Fresh (empty) files use v2; legacy files keep their
  // layout for life so slot offsets stay consistent.
  if (!have_sidecar && file_size >= 4) {
    uint32_t raw = 0;
    if (!ReadLengthWord(file, /*slot_size=*/1, 0, &raw)) {
      std::fclose(file);
      return Status::Internal("cannot read log header " + path);
    }
    format_v2 = (raw & kV2Flag) != 0;
  }

  const size_t header_size = format_v2 ? 8 : 4;
  const size_t slot = options.block_size + header_size;
  const uint64_t complete_slots = file_size / slot;

  // Recover the tail by walking length words only — O(n) 4-byte reads, no
  // payload I/O even for multi-gigabyte logs. The walk starts at the
  // low-water mark: everything below it was truncated (punched slots read
  // as zero length words and must not terminate recovery at tail 1).
  uint64_t tail = low_water;
  while (tail <= complete_slots) {
    uint32_t raw = 0;
    if (!ReadLengthWord(file, slot, tail - 1, &raw)) break;
    if (format_v2 && (raw & kV2Flag) == 0) break;  // Unwritten/foreign slot.
    const uint32_t len = raw & ~kV2Flag;
    if (len == 0 || len > options.block_size) break;
    tail++;
  }

  // A crash can corrupt at most the final counted slot (a torn write that
  // still produced a full-size file, e.g. over pre-allocated space). Verify
  // its checksum and drop it if it fails — it was never acknowledged.
  // Earlier slots are verified lazily on read.
  if (format_v2 && tail > low_water) {
    char head[8];
    std::string payload;
    const uint64_t last = tail - 2;  // 0-based index of last recovered slot.
    if (std::fseek(file, static_cast<long>(last * slot), SEEK_SET) != 0 ||
        std::fread(head, 1, 8, file) != 8) {
      tail--;
    } else {
      const uint32_t len = DecodeFixed32(head) & ~kV2Flag;
      const uint32_t stored_crc = DecodeFixed32(head + 4);
      payload.resize(len);
      if (std::fread(payload.data(), 1, len, file) != len ||
          Crc32c(payload) != stored_crc) {
        tail--;
      }
    }
  }
  return std::unique_ptr<FileLog>(
      new FileLog(path, file, options, tail, format_v2, low_water));
}

FileLog::FileLog(std::string path, std::FILE* file, Options options,
                 uint64_t tail, bool format_v2, uint64_t low_water)
    : path_(std::move(path)),
      options_(options),
      format_v2_(format_v2),
      file_(file),
      tail_(tail),
      low_water_(low_water) {
  stats_.low_water = low_water_;
  metrics_ = MetricsRegistry::Global().RegisterProvider(
      "log.file", [this](const MetricsRegistry::Emit& emit) {
        EmitLogStats(stats(), emit);
      });
}

FileLog::~FileLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<uint64_t> FileLog::Append(std::string block) {
  if (block.size() > options_.block_size) {
    return Status::InvalidArgument("block exceeds the configured block size");
  }
  if (block.empty()) {
    return Status::InvalidArgument("empty blocks are not valid log entries");
  }
  MutexLock lock(mu_);
  const uint64_t pos = tail_;
  std::string slot;
  slot.reserve(SlotSize());
  if (format_v2_) {
    PutFixed32(&slot, static_cast<uint32_t>(block.size()) | kV2Flag);
    PutFixed32(&slot, Crc32c(block));
  } else {
    PutFixed32(&slot, static_cast<uint32_t>(block.size()));
  }
  slot.append(block);
  slot.resize(SlotSize(), '\0');
  if (std::fseek(file_, long((pos - 1) * SlotSize()), SEEK_SET) != 0 ||
      std::fwrite(slot.data(), 1, slot.size(), file_) != slot.size()) {
    stats_.errors++;
    return Status::Internal("log append I/O failed");
  }
  if (std::fflush(file_) != 0) {
    stats_.errors++;
    return Status::Internal("log flush failed");
  }
  if (options_.sync_each_append) {
    if (fdatasync(fileno(file_)) != 0) {
      stats_.errors++;
      return Status::Internal("log fdatasync failed");
    }
  }
  tail_++;
  stats_.appends++;
  stats_.bytes_appended += block.size();
  return pos;
}

Result<std::string> FileLog::Read(uint64_t position) {
  MutexLock lock(mu_);
  if (position == 0 || position >= tail_) {
    return Status::NotFound("log position " + std::to_string(position) +
                            " past tail " + std::to_string(tail_));
  }
  if (position < low_water_) {
    return Status::Truncated("log position " + std::to_string(position) +
                             " below low-water mark " +
                             std::to_string(low_water_));
  }
  char header[8];
  const size_t header_size = HeaderSize();
  if (std::fseek(file_, long((position - 1) * SlotSize()), SEEK_SET) != 0 ||
      std::fread(header, 1, header_size, file_) != header_size) {
    stats_.errors++;
    return Status::Internal("log read I/O failed (header)");
  }
  const uint32_t raw = DecodeFixed32(header);
  if (format_v2_ && (raw & kV2Flag) == 0) {
    stats_.errors++;
    return Status::DataLoss("slot format bit lost at position " +
                            std::to_string(position));
  }
  const uint32_t len = raw & ~kV2Flag;
  if (len == 0 || len > options_.block_size) {
    stats_.errors++;
    return Status::DataLoss("bad slot length at position " +
                            std::to_string(position));
  }
  std::string block(len, '\0');
  if (std::fread(block.data(), 1, len, file_) != len) {
    stats_.errors++;
    return Status::Internal("log read I/O failed (body)");
  }
  if (format_v2_) {
    const uint32_t stored_crc = DecodeFixed32(header + 4);
    if (Crc32c(block) != stored_crc) {
      stats_.errors++;
      return Status::DataLoss("checksum mismatch at position " +
                              std::to_string(position) +
                              ": stored bytes decayed");
    }
  }
  stats_.reads++;
  return block;
}

uint64_t FileLog::Tail() const {
  MutexLock lock(mu_);
  return tail_;
}

void FileLog::RecordRetry() {
  MutexLock lock(mu_);
  stats_.retries++;
}

Status FileLog::PersistLowWaterLocked(uint64_t low_water) {
  std::string buf;
  EncodeSidecar(&buf, format_v2_, low_water);
  const std::string final_path = SidecarPath(path_);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create sidecar " + tmp_path);
  }
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size() &&
                     std::fflush(f) == 0 && fdatasync(fileno(f)) == 0;
  std::fclose(f);
  if (!wrote || std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot persist low-water sidecar " + final_path);
  }
  return Status::OK();
}

Status FileLog::Truncate(uint64_t low_water_position) {
  MutexLock lock(mu_);
  if (low_water_position <= low_water_) return Status::OK();  // Monotone.
  if (low_water_position >= tail_) {
    return Status::InvalidArgument(
        "truncation point " + std::to_string(low_water_position) +
        " at or past tail " + std::to_string(tail_) +
        ": the anchoring checkpoint must stay readable");
  }
  // Ordering matters for crash safety: persist the mark FIRST, punch holes
  // SECOND. Crash after the sidecar but before the punch wastes space, never
  // data; the reverse order would leave recovery walking zeroed slots with
  // no record that they were discarded on purpose.
  HYDER_RETURN_IF_ERROR(PersistLowWaterLocked(low_water_position));
  stats_.truncations++;
  stats_.truncated_blocks += low_water_position - low_water_;
  low_water_ = low_water_position;
  stats_.low_water = low_water_;
#ifdef __linux__
  // Physical reclaim is best-effort (the logical contract is already
  // durable): punch the whole discarded prefix each time — idempotent, and
  // KEEP_SIZE preserves the slot arithmetic for every surviving position.
  if (std::fflush(file_) == 0) {
    (void)fallocate(fileno(file_), FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                    0, static_cast<off_t>((low_water_ - 1) * SlotSize()));
  }
#endif
  return Status::OK();
}

uint64_t FileLog::LowWaterMark() const {
  MutexLock lock(mu_);
  return low_water_;
}

LogStats FileLog::stats() const {
  // Snapshot under mu_: the same mutex every counter is mutated under, so
  // the struct is internally consistent even with concurrent appends.
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace hyder
