#include "log/file_log.h"

#include <unistd.h>

#include <cstring>
#include <memory>

#include "common/crc32c.h"
#include "common/varint.h"

namespace hyder {

namespace {

/// Reads the 4-byte length word of `slot_index` (0-based). Returns false on
/// seek/read failure (EOF past the last slot).
bool ReadLengthWord(std::FILE* file, size_t slot_size, uint64_t slot_index,
                    uint32_t* raw) {
  char header[4];
  if (std::fseek(file, static_cast<long>(slot_index * slot_size),
                 SEEK_SET) != 0 ||
      std::fread(header, 1, 4, file) != 4) {
    return false;
  }
  *raw = DecodeFixed32(header);
  return true;
}

}  // namespace

Result<std::unique_ptr<FileLog>> FileLog::Open(const std::string& path,
                                               Options options) {
  if (options.block_size < 64) {
    return Status::InvalidArgument("block size too small for a file log");
  }
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) {
    return Status::Internal("cannot open log file " + path);
  }
  // One stat for the recovery bound: only complete slots can hold recovered
  // blocks; a trailing partial slot is a torn (never acknowledged) final
  // append and is ignored — the next append overwrites it.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::Internal("cannot stat log file " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(std::ftell(file));

  // Sniff the slot format from the first length word: v2 sets the high bit.
  // Fresh (empty) files use v2; legacy files keep their layout for life so
  // slot offsets stay consistent.
  bool format_v2 = true;
  if (file_size >= 4) {
    uint32_t raw = 0;
    if (!ReadLengthWord(file, /*slot_size=*/1, 0, &raw)) {
      std::fclose(file);
      return Status::Internal("cannot read log header " + path);
    }
    format_v2 = (raw & kV2Flag) != 0;
  }

  const size_t header_size = format_v2 ? 8 : 4;
  const size_t slot = options.block_size + header_size;
  const uint64_t complete_slots = file_size / slot;

  // Recover the tail by walking length words only — O(n) 4-byte reads, no
  // payload I/O even for multi-gigabyte logs.
  uint64_t tail = 1;
  while (tail <= complete_slots) {
    uint32_t raw = 0;
    if (!ReadLengthWord(file, slot, tail - 1, &raw)) break;
    if (format_v2 && (raw & kV2Flag) == 0) break;  // Unwritten/foreign slot.
    const uint32_t len = raw & ~kV2Flag;
    if (len == 0 || len > options.block_size) break;
    tail++;
  }

  // A crash can corrupt at most the final counted slot (a torn write that
  // still produced a full-size file, e.g. over pre-allocated space). Verify
  // its checksum and drop it if it fails — it was never acknowledged.
  // Earlier slots are verified lazily on read.
  if (format_v2 && tail > 1) {
    char head[8];
    std::string payload;
    const uint64_t last = tail - 2;  // 0-based index of last recovered slot.
    if (std::fseek(file, static_cast<long>(last * slot), SEEK_SET) != 0 ||
        std::fread(head, 1, 8, file) != 8) {
      tail--;
    } else {
      const uint32_t len = DecodeFixed32(head) & ~kV2Flag;
      const uint32_t stored_crc = DecodeFixed32(head + 4);
      payload.resize(len);
      if (std::fread(payload.data(), 1, len, file) != len ||
          Crc32c(payload) != stored_crc) {
        tail--;
      }
    }
  }
  return std::unique_ptr<FileLog>(
      new FileLog(file, options, tail, format_v2));
}

FileLog::FileLog(std::FILE* file, Options options, uint64_t tail,
                 bool format_v2)
    : options_(options), format_v2_(format_v2), file_(file), tail_(tail) {
  metrics_ = MetricsRegistry::Global().RegisterProvider(
      "log.file", [this](const MetricsRegistry::Emit& emit) {
        EmitLogStats(stats(), emit);
      });
}

FileLog::~FileLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<uint64_t> FileLog::Append(std::string block) {
  if (block.size() > options_.block_size) {
    return Status::InvalidArgument("block exceeds the configured block size");
  }
  if (block.empty()) {
    return Status::InvalidArgument("empty blocks are not valid log entries");
  }
  MutexLock lock(mu_);
  const uint64_t pos = tail_;
  std::string slot;
  slot.reserve(SlotSize());
  if (format_v2_) {
    PutFixed32(&slot, static_cast<uint32_t>(block.size()) | kV2Flag);
    PutFixed32(&slot, Crc32c(block));
  } else {
    PutFixed32(&slot, static_cast<uint32_t>(block.size()));
  }
  slot.append(block);
  slot.resize(SlotSize(), '\0');
  if (std::fseek(file_, long((pos - 1) * SlotSize()), SEEK_SET) != 0 ||
      std::fwrite(slot.data(), 1, slot.size(), file_) != slot.size()) {
    stats_.errors++;
    return Status::Internal("log append I/O failed");
  }
  if (std::fflush(file_) != 0) {
    stats_.errors++;
    return Status::Internal("log flush failed");
  }
  if (options_.sync_each_append) {
    if (fdatasync(fileno(file_)) != 0) {
      stats_.errors++;
      return Status::Internal("log fdatasync failed");
    }
  }
  tail_++;
  stats_.appends++;
  stats_.bytes_appended += block.size();
  return pos;
}

Result<std::string> FileLog::Read(uint64_t position) {
  MutexLock lock(mu_);
  if (position == 0 || position >= tail_) {
    return Status::NotFound("log position " + std::to_string(position) +
                            " past tail " + std::to_string(tail_));
  }
  char header[8];
  const size_t header_size = HeaderSize();
  if (std::fseek(file_, long((position - 1) * SlotSize()), SEEK_SET) != 0 ||
      std::fread(header, 1, header_size, file_) != header_size) {
    stats_.errors++;
    return Status::Internal("log read I/O failed (header)");
  }
  const uint32_t raw = DecodeFixed32(header);
  if (format_v2_ && (raw & kV2Flag) == 0) {
    stats_.errors++;
    return Status::DataLoss("slot format bit lost at position " +
                            std::to_string(position));
  }
  const uint32_t len = raw & ~kV2Flag;
  if (len == 0 || len > options_.block_size) {
    stats_.errors++;
    return Status::DataLoss("bad slot length at position " +
                            std::to_string(position));
  }
  std::string block(len, '\0');
  if (std::fread(block.data(), 1, len, file_) != len) {
    stats_.errors++;
    return Status::Internal("log read I/O failed (body)");
  }
  if (format_v2_) {
    const uint32_t stored_crc = DecodeFixed32(header + 4);
    if (Crc32c(block) != stored_crc) {
      stats_.errors++;
      return Status::DataLoss("checksum mismatch at position " +
                              std::to_string(position) +
                              ": stored bytes decayed");
    }
  }
  stats_.reads++;
  return block;
}

uint64_t FileLog::Tail() const {
  MutexLock lock(mu_);
  return tail_;
}

void FileLog::RecordRetry() {
  MutexLock lock(mu_);
  stats_.retries++;
}

LogStats FileLog::stats() const {
  // Snapshot under mu_: the same mutex every counter is mutated under, so
  // the struct is internally consistent even with concurrent appends.
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace hyder
