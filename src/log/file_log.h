#ifndef HYDER2_LOG_FILE_LOG_H_
#define HYDER2_LOG_FILE_LOG_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/registry.h"
#include "common/thread_annotations.h"
#include "log/shared_log.h"

namespace hyder {

/// Durable, file-backed shared log: the persistence half of the CORFU
/// substitution (DESIGN.md). Blocks live in fixed-size slots of an
/// append-only file — position p occupies byte range [(p-1)·slot, p·slot) —
/// so reads are a single positioned I/O, exactly the random-access pattern
/// the paper prescribes for SSD-backed logs (§1: "the log should be stored
/// on solid state disks").
///
/// Slot layout (v2, current): [u32 len|kV2Flag][u32 crc32c(payload)][payload]
/// [zero padding]. The high bit of the length word marks the v2 format; the
/// CRC covers the payload, so a slot whose stored bytes decayed surfaces as
/// `DataLoss` on read instead of feeding garbage to meld. Files written by
/// the pre-CRC layout ([u32 len][payload], no flag bit) are detected on open
/// and keep working — reads skip the CRC check and appends continue the
/// legacy layout so the file stays self-consistent.
///
/// A length word of 0 marks an unwritten slot. Recovery derives the count of
/// complete slots from the file size (one fstat), then walks the 4-byte
/// length words only — O(n) header reads, no payload I/O — and finally
/// CRC-checks just the last recovered slot: a crash can tear at most the
/// final append, and a torn final slot was never acknowledged, so it is
/// dropped (the next append overwrites it).
///
/// Truncation (`Truncate`) reclaims the prefix physically: the low-water
/// mark is persisted to a tiny CRC'd sidecar (`<path>.lwm`) *before* the
/// discarded slots are hole-punched (Linux `fallocate`), so a crash between
/// the two steps loses space, never data — recovery trusts the sidecar and
/// starts its tail walk at the mark. The sidecar also records the slot
/// format, because once slot 0 is punched the length-word sniff would read
/// zeros. Positions below the mark read as `Truncated`, never garbage.
///
/// Single-process writer; all servers in the process share one instance
/// (matching the in-process cluster model). `Sync` controls whether each
/// append is fdatasync'ed (off by default for benchmarks; the paper treats
/// durability latency via the CORFU model, Fig. 9).
class FileLog : public SharedLog {
 public:
  struct Options {
    size_t block_size = 8192;
    /// fdatasync every append (durability over throughput).
    bool sync_each_append = false;
  };

  /// High bit of the slot length word: set for the CRC'd v2 slot layout.
  static constexpr uint32_t kV2Flag = 0x80000000u;

  /// Opens or creates the log at `path`, recovering the tail.
  static Result<std::unique_ptr<FileLog>> Open(const std::string& path,
                                               Options options);
  ~FileLog() override;

  FileLog(const FileLog&) = delete;
  FileLog& operator=(const FileLog&) = delete;

  Result<uint64_t> Append(std::string block) EXCLUDES(mu_) override;
  Result<std::string> Read(uint64_t position) EXCLUDES(mu_) override;
  uint64_t Tail() const EXCLUDES(mu_) override;
  size_t block_size() const override { return options_.block_size; }
  void RecordRetry() EXCLUDES(mu_) override;
  Status Truncate(uint64_t low_water_position) EXCLUDES(mu_) override;
  uint64_t LowWaterMark() const EXCLUDES(mu_) override;

  LogStats stats() const EXCLUDES(mu_) override;

  /// False when the file predates the CRC'd slot layout.
  bool crc_protected() const { return format_v2_; }

  /// Sidecar file magic: "LWM" + format version 1.
  static constexpr uint32_t kLwmMagic = 0x4C574D31u;

 private:
  FileLog(std::string path, std::FILE* file, Options options, uint64_t tail,
          bool format_v2, uint64_t low_water);

  /// Writes `<path>.lwm` (magic, format flag, mark, CRC) via tmp+rename.
  Status PersistLowWaterLocked(uint64_t low_water) REQUIRES(mu_);

  /// v2 slots carry [len][crc]; legacy slots only [len].
  size_t HeaderSize() const { return format_v2_ ? 8 : 4; }
  size_t SlotSize() const { return options_.block_size + HeaderSize(); }

  const std::string path_;
  const Options options_;
  const bool format_v2_;
  mutable Mutex mu_;
  std::FILE* file_ GUARDED_BY(mu_);
  uint64_t tail_ GUARDED_BY(mu_);  // Next position to assign (1-based).
  uint64_t low_water_ GUARDED_BY(mu_);  // First readable position.
  LogStats stats_ GUARDED_BY(mu_);
  /// "log.file.*" in the global MetricsRegistry (declared last: the
  /// provider reads stats() and must unregister first).
  ProviderHandle metrics_;
};

}  // namespace hyder

#endif  // HYDER2_LOG_FILE_LOG_H_
