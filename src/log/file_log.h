#ifndef HYDER2_LOG_FILE_LOG_H_
#define HYDER2_LOG_FILE_LOG_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "log/shared_log.h"

namespace hyder {

/// Durable, file-backed shared log: the persistence half of the CORFU
/// substitution (DESIGN.md). Blocks live in fixed-size slots of an
/// append-only file — position p occupies byte range [(p-1)·slot, p·slot) —
/// so reads are a single positioned I/O, exactly the random-access pattern
/// the paper prescribes for SSD-backed logs (§1: "the log should be stored
/// on solid state disks").
///
/// Slot layout: [u32 length][payload][zero padding]. A length of 0 marks an
/// unwritten slot; recovery scans forward from the start until the first
/// unwritten slot to find the tail (a torn final slot is truncated away).
///
/// Single-process writer; all servers in the process share one instance
/// (matching the in-process cluster model). `Sync` controls whether each
/// append is fdatasync'ed (off by default for benchmarks; the paper treats
/// durability latency via the CORFU model, Fig. 9).
class FileLog : public SharedLog {
 public:
  struct Options {
    size_t block_size = 8192;
    /// fdatasync every append (durability over throughput).
    bool sync_each_append = false;
  };

  /// Opens or creates the log at `path`, recovering the tail.
  static Result<std::unique_ptr<FileLog>> Open(const std::string& path,
                                               Options options);
  ~FileLog() override;

  FileLog(const FileLog&) = delete;
  FileLog& operator=(const FileLog&) = delete;

  Result<uint64_t> Append(std::string block) override;
  Result<std::string> Read(uint64_t position) override;
  uint64_t Tail() const override;
  size_t block_size() const override { return options_.block_size; }

  LogStats stats() const;

 private:
  FileLog(std::FILE* file, Options options, uint64_t tail);

  size_t SlotSize() const { return options_.block_size + 4; }

  const Options options_;
  mutable std::mutex mu_;
  std::FILE* file_;
  uint64_t tail_;  // Next position to assign (1-based).
  LogStats stats_;
};

}  // namespace hyder

#endif  // HYDER2_LOG_FILE_LOG_H_
