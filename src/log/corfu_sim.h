#ifndef HYDER2_LOG_CORFU_SIM_H_
#define HYDER2_LOG_CORFU_SIM_H_

#include <cstdint>

#include "common/histogram.h"

namespace hyder {

/// Parameters of the CORFU log-service performance model (§5.1, §6.3).
///
/// The model is a closed-loop discrete-event simulation: each client thread
/// repeatedly (1) obtains the next position from the sequencer (a single
/// FIFO server), (2) ships the block over the network to the storage unit
/// that owns the position (round-robin striping), (3) waits for the unit (a
/// FIFO server per unit, service time = SSD page write) to persist it.
/// Saturation throughput is units / unit_service; latency percentiles grow
/// with queueing as the offered load approaches it — the two behaviours
/// Fig. 9 plots.
struct CorfuSimOptions {
  int storage_units = 6;
  uint64_t unit_service_ns = 42'000;   ///< SSD write of one 8K block.
  uint64_t sequencer_service_ns = 1'500;
  uint64_t network_oneway_ns = 50'000;  ///< Client <-> service one-way.
  int clients = 1;
  int threads_per_client = 20;
  uint64_t duration_ns = 2'000'000'000;  ///< Simulated run length.
  uint64_t warmup_ns = 200'000'000;      ///< Excluded from statistics.

  /// Log-trim modeling: every `trim_every_appends` appends the checkpoint
  /// coordinator issues a trim (CORFU's prefix-reclaim command) that every
  /// storage unit must service — trims share the same FIFO queues as
  /// appends, so aggressive trim cadence shows up as append tail latency.
  /// 0 disables trim traffic.
  uint64_t trim_every_appends = 0;
  uint64_t trim_service_ns = 250'000;  ///< Metadata update + batched erase.
};

/// Results of one simulated run.
struct CorfuSimResult {
  double appends_per_sec = 0;
  Histogram latency_us;  ///< Per-append latency in microseconds.
  uint64_t trims_issued = 0;  ///< Trim commands serviced per storage unit.
};

/// Runs the closed-loop append simulation to completion (virtual time).
CorfuSimResult SimulateCorfuAppends(const CorfuSimOptions& options);

}  // namespace hyder

#endif  // HYDER2_LOG_CORFU_SIM_H_
