#include "log/corfu_sim.h"

#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"

namespace hyder {

namespace {

/// A single FIFO server: queueing is captured arithmetically by tracking
/// when the server frees up.
struct FifoServer {
  uint64_t busy_until = 0;

  /// Enqueues a job arriving at `at`; returns its completion time.
  uint64_t Serve(uint64_t at, uint64_t service) {
    const uint64_t start = at > busy_until ? at : busy_until;
    busy_until = start + service;
    return busy_until;
  }
};

}  // namespace

CorfuSimResult SimulateCorfuAppends(const CorfuSimOptions& options) {
  SimClock clock;
  FifoServer sequencer;
  std::vector<FifoServer> units(options.storage_units);
  uint64_t next_position = 0;
  CorfuSimResult result;
  uint64_t completed = 0;

  const int total_threads = options.clients * options.threads_per_client;
  const uint64_t end = options.duration_ns;

  // One closed loop per client thread: issue, wait for completion, repeat.
  std::function<void(uint64_t)> issue = [&](uint64_t start) {
    if (start >= end) return;
    // Token grant from the sequencer (one network round trip).
    const uint64_t at_sequencer = start + options.network_oneway_ns;
    const uint64_t token_done =
        sequencer.Serve(at_sequencer, options.sequencer_service_ns);
    const uint64_t position = next_position++;
    // Periodic trim: the coordinator's prefix-reclaim command enters every
    // unit's FIFO queue, stealing service time from appends — the cost the
    // chaos bench quantifies when tuning checkpoint/truncation cadence.
    if (options.trim_every_appends > 0 && position > 0 &&
        position % options.trim_every_appends == 0) {
      for (FifoServer& u : units) {
        (void)u.Serve(token_done + options.network_oneway_ns,
                      options.trim_service_ns);
      }
      result.trims_issued++;
    }
    FifoServer& unit = units[position % units.size()];
    // Block shipped to the owning storage unit; one-way from the client, so
    // the sequencer->client->unit path costs two one-way hops after grant.
    const uint64_t at_unit = token_done + 2 * options.network_oneway_ns;
    // SSD page writes are not perfectly uniform: apply a deterministic
    // +/-25% service-time spread (hashed from the position) so latency
    // percentiles behave like a real device's.
    const uint64_t service =
        options.unit_service_ns * (75 + Mix64(position) % 51) / 100;
    const uint64_t persisted = unit.Serve(at_unit, service);
    const uint64_t done = persisted + options.network_oneway_ns;
    clock.ScheduleAt(done, [&, start, done] {
      if (done > options.warmup_ns) {
        result.latency_us.Add((done - start) / 1000);
        completed++;
      }
      issue(done);
    });
  };

  for (int t = 0; t < total_threads; ++t) issue(0);
  clock.RunUntil(end);

  const double measured_secs =
      double(end - options.warmup_ns) / 1e9;
  result.appends_per_sec = double(completed) / measured_secs;
  return result;
}

}  // namespace hyder
