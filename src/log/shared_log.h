#ifndef HYDER2_LOG_SHARED_LOG_H_
#define HYDER2_LOG_SHARED_LOG_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace hyder {

/// The shared, totally-ordered log at the heart of the Hyder architecture
/// (§1, §5.1): the database's only persistent representation and the only
/// point of arbitration between servers.
///
/// The unit of I/O is a fixed-size page, the *intention block*. `Append`
/// assigns the next position in the total order and stores the block;
/// `Read` returns the block at a position. Positions are 1-based; position
/// 0 is reserved ("before the first block").
class SharedLog {
 public:
  virtual ~SharedLog() = default;

  /// Appends a block, returning its assigned position. Blocks longer than
  /// `block_size()` are rejected with InvalidArgument.
  virtual Result<uint64_t> Append(std::string block) = 0;

  /// Reads the block at `position`. Fails with NotFound past the tail.
  virtual Result<std::string> Read(uint64_t position) = 0;

  /// The position that the next append will receive.
  virtual uint64_t Tail() const = 0;

  /// The configured block size in bytes.
  virtual size_t block_size() const = 0;
};

/// Aggregate counters exposed by log implementations.
struct LogStats {
  uint64_t appends = 0;
  uint64_t reads = 0;
  uint64_t bytes_appended = 0;
};

}  // namespace hyder

#endif  // HYDER2_LOG_SHARED_LOG_H_
