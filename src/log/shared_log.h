#ifndef HYDER2_LOG_SHARED_LOG_H_
#define HYDER2_LOG_SHARED_LOG_H_

#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "common/result.h"

namespace hyder {

/// The shared, totally-ordered log at the heart of the Hyder architecture
/// (§1, §5.1): the database's only persistent representation and the only
/// point of arbitration between servers.
///
/// The unit of I/O is a fixed-size page, the *intention block*. `Append`
/// assigns the next position in the total order and stores the block;
/// `Read` returns the block at a position. Positions are 1-based; position
/// 0 is reserved ("before the first block").
class SharedLog {
 public:
  virtual ~SharedLog() = default;

  /// Appends a block, returning its assigned position. Blocks longer than
  /// `block_size()` are rejected with InvalidArgument. [[nodiscard]]: an
  /// ignored append result hides both the position (needed to detect lost
  /// acknowledgements) and the failure itself.
  [[nodiscard]] virtual Result<uint64_t> Append(std::string block) = 0;

  /// Reads the block at `position`. Fails with NotFound past the tail and
  /// with Truncated below the low-water mark (see `Truncate`).
  [[nodiscard]] virtual Result<std::string> Read(uint64_t position) = 0;

  /// The position that the next append will receive.
  virtual uint64_t Tail() const = 0;

  /// Discards every block at positions < `low_water_position` and advances
  /// the low-water mark. Positions are never reused: appends continue from
  /// the current tail, and reads below the mark fail with a typed
  /// `Truncated` status — never garbage, never NotFound. The mark is
  /// monotone; a call with a position at or below the current mark is a
  /// no-op (OK). Truncating at or past the tail is rejected with
  /// InvalidArgument — the caller's anchor checkpoint must itself stay
  /// readable. Default: NotSupported (read-only decorators, sims).
  [[nodiscard]] virtual Status Truncate(uint64_t low_water_position) {
    (void)low_water_position;
    return Status::NotSupported("log does not support truncation");
  }

  /// First position still readable. 1 until the first `Truncate`.
  virtual uint64_t LowWaterMark() const { return 1; }

  /// The configured block size in bytes.
  virtual size_t block_size() const = 0;

  /// Consumers report each retry of a transient (`Unavailable`) log error
  /// here, so a log's stats expose the retry burden its clients absorbed
  /// alongside the errors it produced. Default: not tracked.
  virtual void RecordRetry() {}

  /// Aggregate counters; implementations return a consistent snapshot taken
  /// under their internal lock. Default: no stats tracked.
  virtual struct LogStats stats() const;
};

/// Aggregate counters exposed by log implementations. Counters are mutated
/// under the implementation's mutex; `stats()` snapshots them under the same
/// mutex, so the returned struct is internally consistent.
struct LogStats {
  uint64_t appends = 0;
  uint64_t reads = 0;
  uint64_t bytes_appended = 0;
  /// Failed operations: I/O errors, detected corruption/data loss, and
  /// injected faults (log/fault_log.h).
  uint64_t errors = 0;
  /// Client retries reported through `RecordRetry`.
  uint64_t retries = 0;
  /// Successful `Truncate` calls that advanced the low-water mark.
  uint64_t truncations = 0;
  /// Blocks discarded by truncation, cumulative.
  uint64_t truncated_blocks = 0;
  /// Current first readable position (gauge; 1 = nothing truncated).
  uint64_t low_water = 1;
};

inline LogStats SharedLog::stats() const { return LogStats{}; }

// Field-count guard (see common/metrics.cc): adding a LogStats counter
// without teaching EmitLogStats about it silently drops it from every
// metrics snapshot.
static_assert(sizeof(LogStats) == 8 * sizeof(uint64_t),
              "LogStats field added: update EmitLogStats and this count");

/// Publishes a LogStats snapshot field by field — the registry-provider
/// building block shared by every log implementation (each registers a
/// "log.<kind>" provider; see common/registry.h).
inline void EmitLogStats(const LogStats& s, const MetricEmit& emit) {
  emit("appends", double(s.appends));
  emit("reads", double(s.reads));
  emit("bytes_appended", double(s.bytes_appended));
  emit("errors", double(s.errors));
  emit("retries", double(s.retries));
  emit("truncations", double(s.truncations));
  emit("truncated_blocks", double(s.truncated_blocks));
  emit("low_water", double(s.low_water));
}

}  // namespace hyder

#endif  // HYDER2_LOG_SHARED_LOG_H_
