#ifndef HYDER2_LOG_STRIPED_LOG_H_
#define HYDER2_LOG_STRIPED_LOG_H_

#include <memory>
#include <vector>

#include "common/registry.h"
#include "common/thread_annotations.h"
#include "log/shared_log.h"

namespace hyder {

/// Configuration of the CORFU-like striped log service (§5.1).
struct StripedLogOptions {
  /// Fixed page size; the paper's experiments use 8K blocks (§6.3).
  size_t block_size = 8192;
  /// Number of storage units the log is striped across (the paper uses six
  /// disk servers backed by SSDs).
  int storage_units = 6;
};

/// In-process implementation of the shared log, striped round-robin across
/// a set of storage units exactly as CORFU stripes across disk servers: the
/// sequencer hands out positions, and position p lives on unit p mod U.
///
/// This class provides the *functional* log (total order, persistence within
/// the process, striped placement); the *performance* behaviour of a
/// networked CORFU deployment (queueing at storage units, append/read
/// latency percentiles) is modeled separately by `CorfuSimulation`, which is
/// what the Fig. 9 bench measures. On a single-core host a thread-per-unit
/// implementation could not reproduce a 6-unit cluster's concurrency, so we
/// keep the data path simple and exact.
class StripedLog : public SharedLog {
 public:
  explicit StripedLog(StripedLogOptions options);

  Result<uint64_t> Append(std::string block) EXCLUDES(mu_) override;
  Result<std::string> Read(uint64_t position) EXCLUDES(mu_) override;
  uint64_t Tail() const EXCLUDES(mu_) override;
  size_t block_size() const override { return options_.block_size; }
  void RecordRetry() EXCLUDES(mu_) override;
  /// Releases every block below the mark: each discarded slot's string is
  /// shrunk to capacity 0 (the dense stripe-local index vectors keep their
  /// entries so position arithmetic is untouched). Reads below the mark
  /// return `Truncated`.
  Status Truncate(uint64_t low_water_position) EXCLUDES(mu_) override;
  uint64_t LowWaterMark() const EXCLUDES(mu_) override;

  /// Consistent snapshot taken under the same mutex the counters are
  /// mutated under.
  LogStats stats() const EXCLUDES(mu_) override;

  /// Bytes held by one storage unit (for balance tests).
  uint64_t UnitBytes(int unit) const EXCLUDES(mu_);
  /// Payload bytes still held across all units — the bounded-log assertion
  /// in the chaos tests: after truncation this must drop to the live
  /// suffix, proving the prefix was actually reclaimed.
  uint64_t RetainedBytes() const EXCLUDES(mu_);
  int storage_units() const { return options_.storage_units; }

 private:
  struct StorageUnit {
    std::vector<std::string> blocks;  // Dense: stripe-local index.
    uint64_t bytes = 0;
  };

  const StripedLogOptions options_;
  mutable Mutex mu_;
  std::vector<StorageUnit> units_ GUARDED_BY(mu_);
  /// Next position to assign (positions are 1-based).
  uint64_t tail_ GUARDED_BY(mu_) = 1;
  /// First readable position; everything below was reclaimed.
  uint64_t low_water_ GUARDED_BY(mu_) = 1;
  LogStats stats_ GUARDED_BY(mu_);
  /// "log.striped.*" in the global MetricsRegistry (declared last: the
  /// provider reads stats() and must unregister first).
  ProviderHandle metrics_;
};

}  // namespace hyder

#endif  // HYDER2_LOG_STRIPED_LOG_H_
