#include "meld/group_meld.h"

#include <algorithm>

namespace hyder {

Result<GroupOutcome> RunGroupMeld(const IntentionPtr& first,
                                  const IntentionPtr& second,
                                  EphemeralAllocator* alloc,
                                  NodeResolver* resolver, MeldWork* work) {
  GroupOutcome out;
  // Members already known to abort (e.g. from an earlier premeld) drop out
  // of the pair before any merge work.
  if (first->known_aborted && second->known_aborted) {
    out.intention = nullptr;
    return out;
  }
  if (first->known_aborted) {
    out.intention = second;
    return out;
  }
  if (second->known_aborted) {
    out.intention = first;
    out.second_aborted = true;
    // Not a pair conflict: the second member arrived already killed by
    // premeld, and its provenance passes through unchanged.
    out.second_abort = second->abort_info;
    return out;
  }

  MeldContext ctx;
  ctx.out_tag = second->seq | kGroupTagBit;
  ctx.alloc = alloc;
  ctx.resolver = resolver;
  ctx.work = work;
  ctx.mode = MeldMode::kGroup;
  ctx.group_base = first.get();
  HYDER_ASSIGN_OR_RETURN(MeldResult melded, Meld(ctx, *second, first->root));

  if (melded.conflict) {
    // §4: the earlier intention is inside the later one's conflict zone, so
    // this conflict would abort `second` at final meld regardless. The
    // first intention survives alone — no fate sharing in this direction.
    out.intention = first;
    out.second_aborted = true;
    out.second_abort = melded.abort;
    out.second_abort.stage = AbortStage::kGroupMeld;
    out.second_abort.blamed_seq = first->seq;
    return out;
  }

  auto group = std::make_shared<Intention>();
  group->seq = second->seq;
  group->seq_first = first->seq_first;
  group->txn_id = second->txn_id;
  // Final meld must validate the union of both conflict zones, hence the
  // earlier snapshot (§4's "maximum of n1's and n2's conflict zones").
  group->snapshot_seq =
      std::min(first->snapshot_seq, second->snapshot_seq);
  group->isolation = (first->isolation == IsolationLevel::kSerializable ||
                      second->isolation == IsolationLevel::kSerializable)
                         ? IsolationLevel::kSerializable
                         : IsolationLevel::kSnapshot;
  group->root = std::move(melded.root);
  group->tombstones = first->tombstones;
  group->tombstones.insert(group->tombstones.end(),
                           second->tombstones.begin(),
                           second->tombstones.end());
  group->inside = first->inside;
  group->inside.insert(group->inside.end(), second->inside.begin(),
                       second->inside.end());
  group->inside.push_back(ctx.out_tag);
  group->node_count = first->node_count + second->node_count;
  group->block_count = first->block_count + second->block_count;
  group->members = first->members;
  group->members.insert(group->members.end(), second->members.begin(),
                        second->members.end());
  // Both members' flat views ride along: the group root may still hold lazy
  // edges into either member's node region.
  group->flats = first->flats;
  group->flats.insert(group->flats.end(), second->flats.begin(),
                      second->flats.end());
  out.intention = std::move(group);
  return out;
}

}  // namespace hyder
