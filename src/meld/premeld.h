#ifndef HYDER2_MELD_PREMELD_H_
#define HYDER2_MELD_PREMELD_H_

#include "common/metrics.h"
#include "meld/meld.h"
#include "meld/state_table.h"
#include "txn/intention.h"

namespace hyder {

/// Outcome of one premeld invocation.
struct PremeldOutcome {
  /// The intention final meld should process: either the refreshed
  /// substitute (melded against the premeld input state, §3.2), the
  /// original when premeld was skipped, or the original marked
  /// `known_aborted` when premeld already found the conflict.
  IntentionPtr intention;
  /// True when the target state preceded the transaction's snapshot and the
  /// trial meld was pointless (Algorithm 1, line 3).
  bool skipped = false;
  /// When premeld found the conflict (the intention dies here): the wire
  /// node count of the killed intention, and how many of those nodes were
  /// actually materialized into the pool. With the flat (v3) format the
  /// second number is typically far below the first — the churn the
  /// zero-copy layout avoids; with v2 the two are equal by construction.
  uint64_t killed_nodes = 0;
  uint64_t killed_nodes_materialized = 0;
};

/// Algorithm 1 (PREMELD): trial-melds `intent` against the state produced
/// by intention `PremeldTargetSeq(intent->seq, t, d)`, which it obtains from
/// `states` (blocking until final meld publishes it).
///
/// On success the result is a substitute intention whose snapshot is the
/// premeld input state: most of the conflict zone has been checked and
/// merged already, so final meld only processes the short post-premeld zone
/// (Fig. 5, Fig. 12). The substitute's `inside` set gains the premeld
/// output tag so final meld treats premeld-created ephemeral nodes as part
/// of the intention.
Result<PremeldOutcome> RunPremeld(const IntentionPtr& intent,
                                  StateTable& states, int threads,
                                  int distance, EphemeralAllocator* alloc,
                                  NodeResolver* resolver, MeldWork* work,
                                  bool disable_graft_fastpath = false);

}  // namespace hyder

#endif  // HYDER2_MELD_PREMELD_H_
