#include "meld/state_table.h"

namespace hyder {

StateTable::StateTable(uint64_t capacity, DatabaseState initial)
    : capacity_(capacity < 2 ? 2 : capacity) {
  states_.push_back(std::move(initial));
}

void StateTable::Publish(DatabaseState state) {
  std::lock_guard<std::mutex> lock(mu_);
  states_.push_back(std::move(state));
  while (states_.size() > capacity_) states_.pop_front();
  published_.notify_all();
}

Result<DatabaseState> StateTable::WaitFor(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  published_.wait(lock, [&] {
    return shutdown_ || (!states_.empty() && states_.back().seq >= seq);
  });
  if (states_.empty() || states_.back().seq < seq) {
    return Status::TimedOut("state table shut down while waiting for state " +
                            std::to_string(seq));
  }
  const uint64_t oldest = states_.front().seq;
  if (seq < oldest) {
    return Status::SnapshotTooOld("state " + std::to_string(seq) +
                                  " retired; oldest retained is " +
                                  std::to_string(oldest));
  }
  return states_[seq - oldest];
}

Result<DatabaseState> StateTable::Get(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (states_.empty() || states_.back().seq < seq) {
    return Status::NotFound("state " + std::to_string(seq) +
                            " not yet published");
  }
  const uint64_t oldest = states_.front().seq;
  if (seq < oldest) {
    return Status::SnapshotTooOld("state " + std::to_string(seq) +
                                  " retired; oldest retained is " +
                                  std::to_string(oldest));
  }
  return states_[seq - oldest];
}

DatabaseState StateTable::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_.back();
}

uint64_t StateTable::OldestRetained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_.front().seq;
}

Status StateTable::ReplaceInitial(DatabaseState state) {
  std::lock_guard<std::mutex> lock(mu_);
  if (states_.size() != 1) {
    return Status::InvalidArgument(
        "ReplaceInitial is only legal before any state is published");
  }
  if (states_.front().seq != state.seq) {
    return Status::InvalidArgument("initial state sequence mismatch");
  }
  states_.front() = std::move(state);
  return Status::OK();
}

void StateTable::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  published_.notify_all();
}

}  // namespace hyder
