#include "meld/state_table.h"

namespace hyder {

StateTable::StateTable(uint64_t capacity, DatabaseState initial)
    : capacity_(capacity < 2 ? 2 : capacity) {
  states_.push_back(std::move(initial));
}

void StateTable::Publish(DatabaseState state) {
  MutexLock lock(mu_);
  states_.push_back(std::move(state));
  while (states_.size() > capacity_) states_.pop_front();
  published_.SignalAll();
}

Result<DatabaseState> StateTable::WaitFor(uint64_t seq) {
  MutexLock lock(mu_);
  while (!shutdown_ && (states_.empty() || states_.back().seq < seq)) {
    published_.Wait(mu_);
  }
  if (states_.empty() || states_.back().seq < seq) {
    return Status::TimedOut("state table shut down while waiting for state " +
                            std::to_string(seq));
  }
  const uint64_t oldest = states_.front().seq;
  if (seq < oldest) {
    return Status::SnapshotTooOld("state " + std::to_string(seq) +
                                  " retired; oldest retained is " +
                                  std::to_string(oldest));
  }
  return states_[seq - oldest];
}

Result<DatabaseState> StateTable::Get(uint64_t seq) const {
  MutexLock lock(mu_);
  if (states_.empty() || states_.back().seq < seq) {
    return Status::NotFound("state " + std::to_string(seq) +
                            " not yet published");
  }
  const uint64_t oldest = states_.front().seq;
  if (seq < oldest) {
    return Status::SnapshotTooOld("state " + std::to_string(seq) +
                                  " retired; oldest retained is " +
                                  std::to_string(oldest));
  }
  return states_[seq - oldest];
}

DatabaseState StateTable::Latest() const {
  MutexLock lock(mu_);
  return states_.back();
}

uint64_t StateTable::OldestRetained() const {
  MutexLock lock(mu_);
  return states_.front().seq;
}

Status StateTable::ReplaceInitial(DatabaseState state) {
  MutexLock lock(mu_);
  if (states_.size() != 1) {
    return Status::InvalidArgument(
        "ReplaceInitial is only legal before any state is published");
  }
  if (states_.front().seq != state.seq) {
    return Status::InvalidArgument("initial state sequence mismatch");
  }
  states_.front() = std::move(state);
  return Status::OK();
}

size_t StateTable::RetireBelow(uint64_t seq) {
  // Collect the retired states under the lock but destroy them outside it:
  // dropping a root Ref can cascade-free a large subtree.
  std::deque<DatabaseState> retired;
  {
    MutexLock lock(mu_);
    while (states_.size() > 1 && states_.front().seq < seq) {
      retired.push_back(std::move(states_.front()));
      states_.pop_front();
    }
  }
  return retired.size();
}

void StateTable::Shutdown() {
  MutexLock lock(mu_);
  shutdown_ = true;
  published_.SignalAll();
}

}  // namespace hyder
