#ifndef HYDER2_MELD_STATE_TABLE_H_
#define HYDER2_MELD_STATE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "tree/node.h"

namespace hyder {

/// One immutable database state: the last-committed state after melding the
/// intention with sequence `seq` (identical to state seq-1 when that
/// intention aborted). State 0 is the initial (usually empty) database.
struct DatabaseState {
  uint64_t seq = 0;
  Ref root;
};

/// Ring of recent database states, published by final meld and consumed by
/// premeld threads and the transaction executor.
///
/// Algorithm 1 requires intention v to meld against state v - t*d - 1; the
/// system "must retain each state until the intention that premelds against
/// it has executed", so the table retains a bounded window and blocks
/// premeld threads until final meld catches up (line 5: "wait for Sm").
class StateTable {
 public:
  /// `capacity` bounds retained states; must exceed t*d + the deepest
  /// pipeline lag, or premeld inputs would already be retired.
  StateTable(uint64_t capacity, DatabaseState initial);

  /// Publishes the state produced after intention `seq` (must be the next
  /// sequence). Wakes waiters; retires states beyond the capacity window.
  void Publish(DatabaseState state) EXCLUDES(mu_);

  /// Returns state `seq`, blocking until it is published. Fails with
  /// SnapshotTooOld when it has already been retired, or TimedOut if the
  /// table is shut down while waiting.
  Result<DatabaseState> WaitFor(uint64_t seq) EXCLUDES(mu_);

  /// Non-blocking lookup.
  Result<DatabaseState> Get(uint64_t seq) const EXCLUDES(mu_);

  /// The most recently published state (what new transactions snapshot).
  DatabaseState Latest() const EXCLUDES(mu_);

  /// Sequence of the oldest retained state.
  uint64_t OldestRetained() const EXCLUDES(mu_);

  /// Replaces the initial state before any publication — the checkpoint
  /// bootstrap path, where the reconstructed tree becomes available only
  /// after the owning server (and its resolver) exist.
  Status ReplaceInitial(DatabaseState state) EXCLUDES(mu_);

  /// Retires every state with sequence < `seq` (the latest state is always
  /// kept). Log truncation calls this so states older than the anchoring
  /// checkpoint drop their root references — the precondition for the
  /// retired prefix's nodes returning to the arena as free slabs. Returns
  /// the number of states retired.
  size_t RetireBelow(uint64_t seq) EXCLUDES(mu_);

  /// Wakes all waiters with TimedOut; used at pipeline shutdown.
  void Shutdown() EXCLUDES(mu_);

 private:
  const uint64_t capacity_;
  mutable Mutex mu_;
  CondVar published_;
  /// Contiguous seqs; front() oldest.
  std::deque<DatabaseState> states_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace hyder

#endif  // HYDER2_MELD_STATE_TABLE_H_
