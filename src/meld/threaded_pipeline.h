#ifndef HYDER2_MELD_THREADED_PIPELINE_H_
#define HYDER2_MELD_THREADED_PIPELINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/thread_annotations.h"
#include "meld/pipeline.h"

namespace hyder {

/// The real multithreaded meld pipeline of Fig. 2: premeld worker threads
/// run in parallel with a group-meld/final-meld thread, exactly the
/// structure the paper deploys. The deterministic index arithmetic of §3.4
/// guarantees the outputs are bit-identical to `SequentialPipeline` under
/// the same configuration — a property the tests verify — so the two
/// engines are interchangeable; the sequential engine exists because this
/// reproduction's evaluation host has a single core (see DESIGN.md).
///
/// Stage layout (t = premeld threads):
///   Feed (caller thread, log order)
///     -> per-thread premeld input queues (intention v to thread v mod t)
///     -> premeld workers (block on StateTable::WaitFor, Algorithm 1)
///     -> sequence reorder buffer
///     -> group-meld + final-meld thread (an embedded SequentialPipeline
///        with premeld disabled, preserving the gm/fm semantics verbatim)
///
/// Decisions are delivered through the callback from the fm thread.
class ThreadedPipeline {
 public:
  using DecisionCallback = std::function<void(const MeldDecision&)>;

  ThreadedPipeline(const PipelineConfig& config, DatabaseState initial,
                   NodeResolver* resolver,
                   std::function<void(const NodePtr&)> registrar,
                   DecisionCallback on_decision);
  ~ThreadedPipeline();

  ThreadedPipeline(const ThreadedPipeline&) = delete;
  ThreadedPipeline& operator=(const ThreadedPipeline&) = delete;

  /// Launches the worker threads. Call exactly once.
  void Start();

  /// Feeds the next intention in log order. Blocks when the pipeline is
  /// backed up (this is the back-pressure that ultimately throttles the
  /// executors, §5.2). Fails after Close or on a poisoned pipeline.
  Status Feed(IntentionPtr intent);

  /// Ends the input stream: workers drain, the trailing unpaired group
  /// member (if any) is final-melded, and threads exit.
  void Close();

  /// Waits for all worker threads (implies the stream was Closed).
  void Join();

  /// The state table (shared with premeld waiters and executors).
  StateTable& states() { return engine_.states(); }

  /// Aggregated stats. Only valid after `Join`: the embedded engine's
  /// counters are owned by the meld worker thread until it exits.
  PipelineStats StatsSnapshot() const EXCLUDES(stats_mu_);

  /// First error encountered by any stage, if the pipeline was poisoned.
  Status FirstError() const EXCLUDES(error_mu_);

 private:
  void PremeldWorker(int thread_index);
  void MeldWorker();
  void Poison(const Status& status) EXCLUDES(error_mu_);
  void ReorderAdd(uint64_t seq, IntentionPtr intent)
      EXCLUDES(reorder_mu_, push_mu_);

  const PipelineConfig config_;
  /// gm + fm stages, with premeld handled by this class's workers. Confined
  /// to the meld worker thread while it runs (plus the internally locked
  /// StateTable); the caller may touch it again only after Join.
  SequentialPipeline engine_;
  NodeResolver* const resolver_;
  DecisionCallback on_decision_;

  std::vector<std::unique_ptr<EphemeralAllocator>> pm_allocs_;
  std::vector<std::unique_ptr<BoundedQueue<IntentionPtr>>> pm_queues_;
  BoundedQueue<IntentionPtr> ordered_;

  /// Lock order: push_mu_ before reorder_mu_ (ReorderAdd); never hold
  /// either across a queue Push (except push_mu_, which exists precisely
  /// to serialize the downstream pushes).
  Mutex push_mu_ ACQUIRED_BEFORE(reorder_mu_);
  Mutex reorder_mu_;
  std::map<uint64_t, IntentionPtr> reorder_buffer_ GUARDED_BY(reorder_mu_);
  uint64_t next_ordered_ GUARDED_BY(reorder_mu_);

  mutable Mutex stats_mu_;
  PipelineStats pm_stats_ GUARDED_BY(stats_mu_);

  mutable Mutex error_mu_;
  Status first_error_ GUARDED_BY(error_mu_);
  std::atomic<bool> poisoned_{false};

  std::vector<std::thread> threads_;
  /// Caller-thread state (Feed/Close/Start/Join are single-caller by
  /// contract); never touched by workers.
  uint64_t fed_seq_ = 0;
  bool started_ = false;
  bool closed_ = false;
};

}  // namespace hyder

#endif  // HYDER2_MELD_THREADED_PIPELINE_H_
