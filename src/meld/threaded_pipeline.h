#ifndef HYDER2_MELD_THREADED_PIPELINE_H_
#define HYDER2_MELD_THREADED_PIPELINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/registry.h"
#include "common/seq_ring.h"
#include "common/thread_annotations.h"
#include "meld/pipeline.h"

namespace hyder {

/// A reassembled-but-not-yet-decoded intention: what block assembly emits.
/// Feeding these (FeedRaw) moves DeserializeIntention off the log-poll
/// thread and into the premeld workers, so decode cost scales with
/// `premeld_threads` instead of serializing on the feeder.
struct RawIntention {
  uint64_t seq = 0;
  uint64_t txn_id = 0;
  uint32_t block_count = 1;
  std::string payload;
};

/// The real multithreaded meld pipeline of Fig. 2: premeld worker threads
/// run in parallel with a group-meld/final-meld thread, exactly the
/// structure the paper deploys. The deterministic index arithmetic of §3.4
/// guarantees the outputs are bit-identical to `SequentialPipeline` under
/// the same configuration — a property the tests verify — so the two
/// engines are interchangeable; the sequential engine exists because this
/// reproduction's evaluation host has a single core (see DESIGN.md).
///
/// Stage layout (t = premeld threads):
///   Feed / FeedRaw (caller thread, log order)
///     -> per-thread premeld input queues (intention v to thread v mod t)
///     -> premeld workers: decode (FeedRaw path) + premeld
///        (block on StateTable::WaitFor, Algorithm 1)
///     -> seq-indexed hand-off ring (common/seq_ring.h; slot occupancy is
///        the reorder buffer, so no locks on the common path)
///     -> group-meld + final-meld thread (an embedded SequentialPipeline
///        with premeld disabled, preserving the gm/fm semantics verbatim)
///
/// Decode placement does not affect determinism: DeserializeIntention is a
/// pure function of (payload, seq) — node identities are computed from the
/// log address, and external references stay lazy — so decoding in a worker
/// yields the same intention the feeder would have produced.
///
/// Decisions are delivered through the callback from the fm thread.
class ThreadedPipeline {
 public:
  using DecisionCallback = std::function<void(const MeldDecision&)>;
  /// Invoked (from whichever thread decoded) for every intention decoded by
  /// the pipeline, with the freshly materialized node array — the server's
  /// hook to populate its intention cache (resolver CacheIntention).
  using DecodeSink = std::function<void(
      uint64_t seq, const IntentionPtr&, std::vector<NodePtr>&& nodes)>;

  ThreadedPipeline(const PipelineConfig& config, DatabaseState initial,
                   NodeResolver* resolver,
                   std::function<void(const NodePtr&)> registrar,
                   DecisionCallback on_decision,
                   DecodeSink on_decode = nullptr);
  ~ThreadedPipeline();

  ThreadedPipeline(const ThreadedPipeline&) = delete;
  ThreadedPipeline& operator=(const ThreadedPipeline&) = delete;

  /// Launches the worker threads. Call exactly once.
  void Start();

  /// Feeds the next intention in log order, already decoded (legacy /
  /// testing path). Blocks when the pipeline is backed up (this is the
  /// back-pressure that ultimately throttles the executors, §5.2). Fails
  /// after Close or on a poisoned pipeline.
  Status Feed(IntentionPtr intent);

  /// Feeds the next intention as its reassembled payload; a premeld worker
  /// deserializes it (with `premeld_threads == 0` the caller thread decodes
  /// inline, preserving the current single-threaded path). Same ordering
  /// and back-pressure contract as Feed.
  Status FeedRaw(RawIntention raw);

  /// Ends the input stream: workers drain, the trailing unpaired group
  /// member (if any) is final-melded, and threads exit. Safe to call from
  /// any thread, once Feed/FeedRaw callers have stopped.
  void Close();

  /// Waits for all worker threads (implies the stream was Closed).
  void Join();

  /// The state table (shared with premeld waiters and executors).
  StateTable& states() { return engine_.states(); }

  /// Aggregated stats. Safe to call from any thread at any time:
  ///
  ///  * After `Join`, the full per-stage detail (decode/premeld/gm/fm
  ///    MeldWork, resolver locks, ...) is merged from the worker-owned
  ///    counters — the joins provide the happens-before edges.
  ///  * Mid-run, only the headline counters (intentions / committed /
  ///    aborted) and the hand-off ring counters are populated, read from
  ///    atomic mirrors maintained by the meld worker. Invariant: a mid-run
  ///    snapshot never reports committed + aborted > intentions, because
  ///    the worker bumps `intentions` before melding and the decision
  ///    counters (with release ordering) after, while the snapshot reads
  ///    the decision counters first (acquire) and `intentions` second.
  ///    tests/threaded_pipeline_test.cc hammers this invariant.
  PipelineStats StatsSnapshot() const;

  /// First error encountered by any stage, if the pipeline was poisoned.
  Status FirstError() const EXCLUDES(error_mu_);

 private:
  /// One unit of premeld-stage input: either a decoded intention (Feed) or
  /// a raw payload the worker decodes (FeedRaw).
  struct StageItem {
    uint64_t seq = 0;
    IntentionPtr decoded;
    RawIntention raw;
    bool is_raw = false;
  };

  /// Per-worker stage counters, written only by the owning worker thread
  /// while it runs and read by StatsSnapshot after Join (the join provides
  /// the happens-before edge). Merge-on-snapshot replaces the old
  /// stats_mu_-per-intention accounting on the hot path.
  struct WorkerStats {
    MeldWork deserialize;
    MeldWork premeld;
    uint64_t skips = 0;
    uint64_t aborts = 0;
    uint64_t killed_nodes = 0;
    uint64_t killed_nodes_materialized = 0;
    /// Knob values as this worker consumed them (see ConfigEcho); merged
    /// into the snapshot's config_echo after Join.
    ConfigEcho echo;
  };

  void PremeldWorker(int thread_index);
  void MeldWorker();
  /// Meld-thread decision fan-out: updates the mid-run counters and the
  /// durable->decision histogram, then invokes the callback.
  void DeliverDecisions(const std::vector<MeldDecision>& decisions);
  void Poison(const Status& status) EXCLUDES(error_mu_);
  /// Shared Feed/FeedRaw tail: order check, then route to a premeld worker
  /// (or decode inline and hand to the meld thread when t == 0).
  Status Dispatch(StageItem item);
  Result<IntentionPtr> DecodeRaw(const RawIntention& raw,
                                 WorkerStats* stats);

  const PipelineConfig config_;
  /// gm + fm stages, with premeld handled by this class's workers. Confined
  /// to the meld worker thread while it runs (plus the internally locked
  /// StateTable); the caller may touch it again only after Join.
  // hyder-check: allow(guard-completeness): meld-thread confined, see above
  SequentialPipeline engine_;
  NodeResolver* const resolver_;
  // hyder-check: allow(guard-completeness): set before Start, read-only after
  DecisionCallback on_decision_;
  // hyder-check: allow(guard-completeness): set before Start, read-only after
  DecodeSink on_decode_;

  /// Per-premeld-worker resources: slot t is touched only by worker t
  /// (the vectors themselves are sized in the constructor and never
  /// resized while threads run).
  // hyder-check: allow(guard-completeness): per-worker slot confinement
  std::vector<std::unique_ptr<EphemeralAllocator>> pm_allocs_;
  std::vector<std::unique_ptr<BoundedQueue<StageItem>>> pm_queues_;
  // hyder-check: allow(guard-completeness): per-worker slot confinement
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  /// Decode counters for the t == 0 inline path (feeder thread only).
  // hyder-check: allow(guard-completeness): feeder-thread confined
  WorkerStats feeder_stats_;
  /// Premeld → final-meld hand-off; slot occupancy doubles as the sequence
  /// reorder buffer (see common/seq_ring.h).
  SeqRing<IntentionPtr> ring_;

  /// Feed-timestamp ring for the durable→decision latency histogram: slot
  /// `seq % size` holds the NowNanos stamp taken when Dispatch accepted the
  /// sequence. Sized past the pipeline's in-flight bound (premeld queues +
  /// workers + hand-off ring + the meld thread's pending group member), so
  /// a slot's stamp is consumed before the next lap overwrites it.
  // hyder-check: allow(guard-completeness): fixed-size array of atomics
  std::vector<std::atomic<uint64_t>> feed_ts_;
  /// Global-registry instruments (process lifetime; see common/registry.h).
  LatencyHistogram* const durable_to_decision_us_;

  /// Mid-run headline counters mirrored by the meld worker (the engine's
  /// own PipelineStats are thread-confined until Join). Ordering contract
  /// documented on StatsSnapshot().
  std::atomic<uint64_t> meld_intentions_{0};
  std::atomic<uint64_t> meld_committed_{0};
  std::atomic<uint64_t> meld_aborted_{0};
  /// Set by Join after all workers exited; selects the full-detail
  /// StatsSnapshot path (the release store pairs with the snapshot's
  /// acquire load, though Join's thread joins already order the counters).
  std::atomic<bool> joined_{false};

  mutable Mutex error_mu_;
  Status first_error_ GUARDED_BY(error_mu_);
  std::atomic<bool> poisoned_{false};

  /// Written only by Start and Join (single-caller contract below).
  // hyder-check: allow(guard-completeness): single-caller confined
  std::vector<std::thread> threads_;
  /// Set by Close (any thread) and read by Feed/FeedRaw; atomic so a
  /// shutdown racing the feeder is benign.
  std::atomic<bool> closed_{false};
  /// Single-caller state: Feed/FeedRaw/Start/Join must be called from one
  /// thread at a time (the log-poll thread); never touched by workers.
  // hyder-check: allow(guard-completeness): single-caller confined
  uint64_t fed_seq_;
  // hyder-check: allow(guard-completeness): single-caller confined
  bool started_ = false;

  /// Publishes "pipeline.*" fields (via StatsSnapshot, which is mid-run
  /// safe) to the global MetricsRegistry. Declared last so the provider is
  /// unregistered before any member it reads is destroyed.
  ProviderHandle metrics_;
};

}  // namespace hyder

#endif  // HYDER2_MELD_THREADED_PIPELINE_H_
