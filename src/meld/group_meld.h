#ifndef HYDER2_MELD_GROUP_MELD_H_
#define HYDER2_MELD_GROUP_MELD_H_

#include "common/metrics.h"
#include "meld/meld.h"
#include "txn/intention.h"

namespace hyder {

/// Outcome of combining one adjacent pair of intentions (§4).
struct GroupOutcome {
  /// The intention final meld should process in place of the pair: the
  /// group intention, or `first` alone when `second` conflicted with it.
  IntentionPtr intention;
  /// True when the pair collapsed to the first member (the §4 exception to
  /// fate sharing: the earlier intention is in the later one's conflict
  /// zone, so the later one would abort anyway).
  bool second_aborted = false;
  /// Provenance of that collapse (meaningful when `second_aborted`): the
  /// pair-formation conflict, or the premeld kill the second member already
  /// carried.
  AbortInfo second_abort;
};

/// Combines the adjacent pair (first, second) — first precedes second in
/// the log — into a single group intention. Overlapping nodes collapse
/// (Fig. 7) so final meld processes them once; the merged metadata refers
/// to the earlier snapshot so final meld still validates both members'
/// conflict zones. The group commits iff both members commit (fate
/// sharing), except when `second` conflicts with `first` itself, in which
/// case `first` survives alone.
Result<GroupOutcome> RunGroupMeld(const IntentionPtr& first,
                                  const IntentionPtr& second,
                                  EphemeralAllocator* alloc,
                                  NodeResolver* resolver, MeldWork* work);

}  // namespace hyder

#endif  // HYDER2_MELD_GROUP_MELD_H_
