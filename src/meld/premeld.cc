#include "meld/premeld.h"

#include "txn/flat_view.h"

namespace hyder {

namespace {

/// Nodes of `intent` that exist in the pool. Flat intentions materialize
/// lazily, so the count is whatever the views have produced so far; eager
/// (v2) intentions materialized everything at decode.
uint64_t MaterializedNodes(const Intention& intent) {
  if (intent.flats.empty()) return intent.node_count;
  uint64_t n = 0;
  for (const auto& [seq, view] : intent.flats) n += view->materialized();
  return n;
}

}  // namespace

Result<PremeldOutcome> RunPremeld(const IntentionPtr& intent,
                                  StateTable& states, int threads,
                                  int distance, EphemeralAllocator* alloc,
                                  NodeResolver* resolver, MeldWork* work,
                                  bool disable_graft_fastpath) {
  PremeldOutcome out;
  const uint64_t m = PremeldTargetSeq(intent->seq, threads, distance);
  if (intent->snapshot_seq >= m) {
    // The premeld input is older than (or equal to) the snapshot: there is
    // no premeld conflict zone to check (Algorithm 1, line 3).
    out.intention = intent;
    out.skipped = true;
    return out;
  }
  HYDER_ASSIGN_OR_RETURN(DatabaseState sm, states.WaitFor(m));

  MeldContext ctx;
  ctx.out_tag = intent->seq | kPremeldTagBit;
  ctx.alloc = alloc;
  ctx.resolver = resolver;
  ctx.work = work;
  ctx.mode = MeldMode::kState;
  ctx.disable_graft_fastpath = disable_graft_fastpath;
  HYDER_ASSIGN_OR_RETURN(MeldResult melded, Meld(ctx, *intent, sm.root));

  if (melded.conflict) {
    auto aborted = std::make_shared<Intention>(*intent);
    aborted->known_aborted = true;
    // Provenance: the decision-level cause is "premeld kill"; the conflict
    // the premeld proved (write-write, phantom, ...) rides in `conflict`.
    // The zone bound is the premeld input state — the newest intention the
    // conflicting writer can be.
    aborted->abort_info = melded.abort;
    aborted->abort_info.cause = AbortCause::kAbortPremeldKill;
    aborted->abort_info.stage = AbortStage::kPremeld;
    aborted->abort_info.blamed_seq = sm.seq;
    out.killed_nodes = intent->node_count;
    out.killed_nodes_materialized = MaterializedNodes(*intent);
    out.intention = std::move(aborted);
    return out;
  }

  auto substitute = std::make_shared<Intention>();
  substitute->seq = intent->seq;
  substitute->seq_first = intent->seq_first;
  substitute->txn_id = intent->txn_id;
  // The substitute "executed against" the premeld input state (§3.3: the
  // output of meld is the transaction <S_m, S_out>).
  substitute->snapshot_seq = sm.seq;
  substitute->isolation = intent->isolation;
  substitute->root = std::move(melded.root);
  // Tombstones carry forward: their conflict checks must also cover the
  // post-premeld zone, and final meld re-applies them idempotently.
  substitute->tombstones = intent->tombstones;
  substitute->inside = intent->inside;
  substitute->inside.push_back(ctx.out_tag);
  substitute->node_count = intent->node_count;
  substitute->members = intent->members;
  substitute->block_count = intent->block_count;
  // Flat views ride along so final meld can still materialize lazy member
  // edges that premeld never touched.
  substitute->flats = intent->flats;
  out.intention = std::move(substitute);
  return out;
}

}  // namespace hyder
