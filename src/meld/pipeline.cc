#include "meld/pipeline.h"

#include "common/lock_counter.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace hyder {

namespace {

/// Charges the meld thread's resolver lock acquisitions to
/// `stats->fm_resolver_locks` across a scope (thread-local counter delta,
/// so concurrent premeld workers' resolver traffic is not misattributed).
class MeldThreadLockDelta {
 public:
  explicit MeldThreadLockDelta(PipelineStats* stats)
      : stats_(stats), start_(ResolverLockCount()) {}
  ~MeldThreadLockDelta() {
    stats_->fm_resolver_locks += ResolverLockCount() - start_;
  }

 private:
  PipelineStats* const stats_;
  const uint64_t start_;
};
/// Ephemeral thread-id assignment: final meld is thread 0, group meld is
/// thread 1, premeld threads are 2..t+1. The slots are fixed (independent
/// of t) so that any two engines running the same (t, d, group)
/// configuration — sequential or multithreaded — generate identical
/// two-part ephemeral identities (§3.4).
constexpr uint32_t kFinalMeldThreadId = 0;
constexpr uint32_t kGroupMeldThreadId = 1;
constexpr uint32_t kPremeldThreadIdBase = 2;
}  // namespace

AbortInfo MakeAdmissionRejectAbort() {
  AbortInfo a;
  a.cause = AbortCause::kAbortBusy;
  a.conflict = AbortCause::kAbortBusy;
  a.stage = AbortStage::kAdmission;
  return a;
}

void SequentialPipeline::NoteAbort(const MeldDecision& d) {
  stats_.RecordAbort(d.abort);
  if (d.abort.key_kind == AbortKeyKind::kUserKey) {
    contention_.Offer(d.abort.key);
  }
  TraceInstant(TraceStage::kAbort, d.seq,
               static_cast<uint32_t>(d.abort.cause));
}

SequentialPipeline::SequentialPipeline(
    const PipelineConfig& config, DatabaseState initial,
    NodeResolver* resolver, std::function<void(const NodePtr&)> registrar)
    : config_(config),
      states_(config.state_retention, initial),
      resolver_(resolver),
      fm_alloc_(kFinalMeldThreadId),
      gm_alloc_(kGroupMeldThreadId) {
  fm_alloc_.registrar = registrar;
  gm_alloc_.registrar = registrar;
  for (int t = 0; t < config_.premeld_threads; ++t) {
    pm_allocs_.push_back(std::make_unique<EphemeralAllocator>(
        kPremeldThreadIdBase + uint32_t(t)));
    pm_allocs_.back()->registrar = registrar;
  }
  // Prefixes for seqs 0..initial.seq (zero history when bootstrapping from
  // a checkpoint: pre-checkpoint conflict-zone block counts are unknown and
  // irrelevant — premeld targets beyond retention fail with SnapshotTooOld
  // as they would on any server).
  block_prefix_.assign(states_.Latest().seq + 1, 0);
  published_seq_ = states_.Latest().seq;
  // Config echo (see ConfigEcho): each knob is stamped where it is
  // consumed. Retention and fanout are consumed right here, at state-table
  // construction / snapshot layout selection.
  ConfigEcho echo;
  echo.state_retention = static_cast<int64_t>(config_.state_retention);
  echo.tree_fanout = config_.tree_fanout;
  stats_.config_echo.Observe(echo);
}

uint64_t SequentialPipeline::BlocksUpTo(uint64_t seq) const {
  if (seq >= block_prefix_.size()) return block_prefix_.back();
  return block_prefix_[seq];
}

std::vector<uint64_t> SequentialPipeline::EphemeralCounters() const {
  std::vector<uint64_t> counters;
  counters.reserve(2 + pm_allocs_.size());
  counters.push_back(fm_alloc_.next_seq());
  counters.push_back(gm_alloc_.next_seq());
  for (const auto& a : pm_allocs_) counters.push_back(a->next_seq());
  return counters;
}

void SequentialPipeline::RestoreEphemeralCounters(
    const std::vector<uint64_t>& counters) {
  if (counters.size() > 0) fm_alloc_.set_next_seq(counters[0]);
  if (counters.size() > 1) gm_alloc_.set_next_seq(counters[1]);
  for (size_t t = 0; t + 2 < counters.size() && t < pm_allocs_.size(); ++t) {
    pm_allocs_[t]->set_next_seq(counters[t + 2]);
  }
}

Result<std::vector<MeldDecision>> SequentialPipeline::Process(
    IntentionPtr intent) {
  MeldThreadLockDelta lock_delta(&stats_);
  if (intent->seq != block_prefix_.size()) {
    return Status::InvalidArgument(
        "pipeline requires consecutive sequences; got " +
        std::to_string(intent->seq));
  }
  // (Txn id 0 is only used by codec-level tests that feed bare intentions;
  // real servers always stamp a nonzero (server id, local seq) id.)
  if (intent->txn_id != 0 && !fed_txns_.insert(intent->txn_id).second) {
    return Status::Internal(
        "transaction " + std::to_string(intent->txn_id) +
        " reached the meld pipeline twice — a retried append was not "
        "deduplicated and would commit twice");
  }
  block_prefix_.push_back(block_prefix_.back() + intent->block_count);
  stats_.intentions++;

  // --- Premeld stage (Algorithm 1). ---
  {
    ConfigEcho echo;
    echo.premeld_threads = config_.premeld_threads;
    echo.premeld_distance = config_.premeld_distance;
    stats_.config_echo.Observe(echo);
  }
  if (config_.premeld_threads > 0 && !intent->known_aborted) {
    // The probe guards the stage actually running: the threaded engine runs
    // premeld in its own workers (its embedded engine has t == 0) and fires
    // this boundary there, so the two engines see one schedule.
    if (config_.stage_probe) {
      HYDER_RETURN_IF_ERROR(
          config_.stage_probe(PipelineStage::kPremeld, intent->seq));
    }
    const int thread =
        PremeldThreadFor(intent->seq, config_.premeld_threads);
    TraceSpan span(TraceStage::kPremeld, intent->seq);
    CpuStopwatch cpu;
    MeldWork work;
    HYDER_ASSIGN_OR_RETURN(
        PremeldOutcome out,
        RunPremeld(intent, states_, config_.premeld_threads,
                   config_.premeld_distance, pm_allocs_[thread].get(),
                   resolver_, &work, config_.disable_graft_fastpath));
    work.cpu_nanos = cpu.ElapsedNanos();
    stats_.premeld += work;
    if (out.skipped) stats_.premeld_skips++;
    if (out.intention->known_aborted) stats_.premeld_aborts++;
    stats_.premeld_killed_nodes += out.killed_nodes;
    stats_.premeld_killed_nodes_materialized += out.killed_nodes_materialized;
    intent = out.intention;
  }
  return AfterPremeld(std::move(intent));
}

Result<std::vector<MeldDecision>> SequentialPipeline::AfterPremeld(
    IntentionPtr intent) {
  if (config_.stage_probe) {
    HYDER_RETURN_IF_ERROR(
        config_.stage_probe(PipelineStage::kHandoff, intent->seq));
  }
  {
    ConfigEcho echo;
    echo.group_meld = config_.group_meld ? 1 : 0;
    stats_.config_echo.Observe(echo);
  }
  if (!config_.group_meld) return FinalMeld(std::move(intent));
  // --- Group meld stage (§4): pair odd seq with the following even seq. ---
  if (!pending_group_) {
    pending_group_ = std::move(intent);
    return std::vector<MeldDecision>{};
  }
  IntentionPtr first = std::move(pending_group_);
  pending_group_ = nullptr;
  if (config_.stage_probe) {
    HYDER_RETURN_IF_ERROR(
        config_.stage_probe(PipelineStage::kGroupMeld, intent->seq));
  }
  TraceSpan span(TraceStage::kGroupMeld, intent->seq);
  CpuStopwatch cpu;
  MeldWork work;
  HYDER_ASSIGN_OR_RETURN(
      GroupOutcome out,
      RunGroupMeld(first, intent, &gm_alloc_, resolver_, &work));
  work.cpu_nanos = cpu.ElapsedNanos();
  stats_.group_meld += work;

  std::vector<MeldDecision> decisions;
  if (out.second_aborted) {
    // The later member conflicted with the earlier one inside the pair (or
    // was already premeld-aborted): it aborts now; the earlier one proceeds
    // alone as the group intention.
    decisions.push_back(
        MeldDecision{intent->seq, intent->txn_id, false, out.second_abort});
    NoteAbort(decisions.back());
    stats_.aborted++;
    stats_.group_singletons++;
  }
  if (out.intention == nullptr) {
    // Both members were already known (from premeld) to abort.
    for (const IntentionPtr& member : {first, intent}) {
      for (const auto& [seq, txn] : member->members) {
        decisions.push_back(
            MeldDecision{seq, txn, false, member->abort_info});
        NoteAbort(decisions.back());
        stats_.aborted++;
      }
    }
    PublishUpTo(intent->seq, states_.Latest().root);
    return decisions;
  }
  if (out.intention->members.size() == 1 && !out.second_aborted &&
      out.intention.get() == intent.get() && first->known_aborted) {
    decisions.push_back(
        MeldDecision{first->seq, first->txn_id, false, first->abort_info});
    NoteAbort(decisions.back());
    stats_.aborted++;
  }
  HYDER_ASSIGN_OR_RETURN(std::vector<MeldDecision> fm,
                         FinalMeld(out.intention));
  // Guarantee states exist for every sequence up to the pair's end even
  // when the group collapsed to its first member.
  PublishUpTo(intent->seq, states_.Latest().root);
  decisions.insert(decisions.end(), fm.begin(), fm.end());
  return decisions;
}

Result<std::vector<MeldDecision>> SequentialPipeline::Flush() {
  MeldThreadLockDelta lock_delta(&stats_);
  if (!pending_group_) return std::vector<MeldDecision>{};
  IntentionPtr last = std::move(pending_group_);
  pending_group_ = nullptr;
  stats_.group_singletons++;
  return FinalMeld(std::move(last));
}

void SequentialPipeline::PublishUpTo(uint64_t seq, const Ref& root) {
  while (published_seq_ < seq) {
    ++published_seq_;
    states_.Publish(DatabaseState{published_seq_, root});
    TraceInstant(TraceStage::kPublish, published_seq_);
  }
}

Result<std::vector<MeldDecision>> SequentialPipeline::FinalMeld(
    IntentionPtr intent) {
  if (config_.stage_probe) {
    HYDER_RETURN_IF_ERROR(
        config_.stage_probe(PipelineStage::kFinalMeld, intent->seq));
  }
  std::vector<MeldDecision> decisions;
  if (intent->known_aborted) {
    // Premeld already proved the conflict; final meld skips the intention
    // entirely (§3.1) and the state passes through unchanged.
    for (const auto& [seq, txn] : intent->members) {
      decisions.push_back(MeldDecision{seq, txn, false, intent->abort_info});
      NoteAbort(decisions.back());
      stats_.aborted++;
    }
    PublishUpTo(intent->seq, states_.Latest().root);
    return decisions;
  }

  TraceSpan span(TraceStage::kFinalMeld, intent->seq);
  DatabaseState latest = states_.Latest();
  MeldContext ctx;
  ctx.out_tag = intent->seq | kFinalTagBit;
  ctx.alloc = &fm_alloc_;
  ctx.resolver = resolver_;
  MeldWork work;
  ctx.work = &work;
  ctx.mode = MeldMode::kState;
  ctx.output_is_state = true;
  ctx.disable_graft_fastpath = config_.disable_graft_fastpath;
  {
    ConfigEcho echo;
    echo.disable_graft_fastpath = config_.disable_graft_fastpath ? 1 : 0;
    stats_.config_echo.Observe(echo);
  }
  CpuStopwatch cpu;
  HYDER_ASSIGN_OR_RETURN(MeldResult melded, Meld(ctx, *intent, latest.root));
  work.cpu_nanos = cpu.ElapsedNanos();
  stats_.final_meld += work;
  stats_.final_melds++;
  stats_.conflict_zone_sum +=
      block_prefix_.back() - BlocksUpTo(intent->snapshot_seq);

  const Ref& new_root = melded.conflict ? latest.root : melded.root;
  AbortInfo abort = melded.abort;
  abort.stage = AbortStage::kFinalMeld;
  abort.blamed_seq = latest.seq;
  if (intent->members.size() > 1) {
    // A group intention aborts as a unit (§4 fate sharing): the members'
    // decision-level cause is fate sharing; the conflict the meld actually
    // proved stays in `conflict` (and the key fields still name it).
    abort.cause = AbortCause::kAbortGroupFateSharing;
  }
  for (const auto& [seq, txn] : intent->members) {
    if (melded.conflict) {
      decisions.push_back(MeldDecision{seq, txn, false, abort});
      NoteAbort(decisions.back());
      stats_.aborted++;
    } else {
      decisions.push_back(MeldDecision{seq, txn, true, AbortInfo{}});
      stats_.committed++;
    }
  }
  PublishUpTo(intent->seq, new_root);
  return decisions;
}

}  // namespace hyder
