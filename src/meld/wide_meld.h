#ifndef HYDER2_MELD_WIDE_MELD_H_
#define HYDER2_MELD_WIDE_MELD_H_

// The meld operator for wide (high-fanout) trees. Meld() in meld.cc
// dispatches here when the intention or base tree uses the wide layout;
// the contract (modes, conflict classes, determinism §3.4) is identical
// to the binary melder's.
//
// Granularity: structural decisions — the ssv==vn graft fast path and the
// phantom check for structural-read marks — operate at page granularity
// (a page's ssv anchors the whole page, exactly as a binary node's ssv
// anchors its subtree). Content decisions — write-write and read-write
// checks — operate at slot granularity against the per-slot metadata, so
// two transactions touching different keys that happen to share a page do
// NOT conflict: the per-slot false-positive reduction this layout buys.

#include "common/result.h"
#include "meld/meld.h"
#include "txn/intention.h"

namespace hyder {

/// Runs one wide-layout meld. Same semantics as Melder::Run: returns the
/// melded root, Status::Aborted for OCC conflicts, other errors for real
/// faults. Called from Meld(), which converts aborts into MeldResult.
Result<Ref> RunWideMeld(const MeldContext& ctx, const Intention& intent,
                        const Ref& base_root);

}  // namespace hyder

#endif  // HYDER2_MELD_WIDE_MELD_H_
