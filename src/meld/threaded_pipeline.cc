#include "meld/threaded_pipeline.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "txn/codec.h"

namespace hyder {

namespace {
PipelineConfig EngineConfig(const PipelineConfig& config) {
  PipelineConfig engine = config;
  engine.premeld_threads = 0;  // Premeld runs in this class's workers.
  return engine;
}
}  // namespace

ThreadedPipeline::ThreadedPipeline(
    const PipelineConfig& config, DatabaseState initial,
    NodeResolver* resolver, std::function<void(const NodePtr&)> registrar,
    DecisionCallback on_decision, DecodeSink on_decode)
    : config_(config),
      engine_(EngineConfig(config), initial, resolver, registrar),
      resolver_(resolver),
      on_decision_(std::move(on_decision)),
      on_decode_(std::move(on_decode)),
      ring_(std::max<size_t>(1, config.stage_queue_capacity),
            initial.seq + 1),
      fed_seq_(initial.seq) {
  for (int t = 0; t < config_.premeld_threads; ++t) {
    // Premeld thread ids 2..t+1, matching SequentialPipeline's fixed slots
    // so both engines generate identical ephemeral identities (§3.4).
    pm_allocs_.push_back(
        std::make_unique<EphemeralAllocator>(2 + uint32_t(t)));
    pm_allocs_.back()->registrar = registrar;
    pm_queues_.push_back(std::make_unique<BoundedQueue<StageItem>>(
        std::max<size_t>(1, config.stage_queue_capacity)));
    worker_stats_.push_back(std::make_unique<WorkerStats>());
  }
}

ThreadedPipeline::~ThreadedPipeline() {
  if (started_) {
    Close();
    Join();
  }
}

void ThreadedPipeline::Start() {
  started_ = true;
  for (int t = 0; t < config_.premeld_threads; ++t) {
    threads_.emplace_back([this, t] { PremeldWorker(t); });
  }
  threads_.emplace_back([this] { MeldWorker(); });
}

Result<IntentionPtr> ThreadedPipeline::DecodeRaw(const RawIntention& raw,
                                                 WorkerStats* stats) {
  CpuStopwatch cpu;
  std::vector<NodePtr> nodes;
  HYDER_ASSIGN_OR_RETURN(
      IntentionPtr intent,
      DeserializeIntention(raw.payload, raw.seq, raw.block_count, resolver_,
                           raw.txn_id, &nodes));
  stats->deserialize.cpu_nanos += cpu.ElapsedNanos();
  stats->deserialize.nodes_visited += intent->node_count;
  if (on_decode_) on_decode_(raw.seq, intent, std::move(nodes));
  return intent;
}

Status ThreadedPipeline::Feed(IntentionPtr intent) {
  StageItem item;
  item.seq = intent->seq;
  item.decoded = std::move(intent);
  return Dispatch(std::move(item));
}

Status ThreadedPipeline::FeedRaw(RawIntention raw) {
  StageItem item;
  item.seq = raw.seq;
  item.raw = std::move(raw);
  item.is_raw = true;
  return Dispatch(std::move(item));
}

Status ThreadedPipeline::Dispatch(StageItem item) {
  if (poisoned_.load(std::memory_order_acquire)) return FirstError();
  if (closed_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("pipeline already closed");
  }
  if (item.seq != fed_seq_ + 1) {
    return Status::InvalidArgument("intentions must be fed in log order");
  }
  fed_seq_ = item.seq;
  if (config_.premeld_threads == 0) {
    // No premeld stage: decode inline on the feeder (the current
    // single-threaded path) and hand straight to the meld thread.
    IntentionPtr intent;
    if (item.is_raw) {
      auto decoded = DecodeRaw(item.raw, &feeder_stats_);
      if (!decoded.ok()) {
        Poison(decoded.status());
        return decoded.status();
      }
      intent = std::move(*decoded);
    } else {
      intent = std::move(item.decoded);
    }
    if (!ring_.Push(item.seq, std::move(intent))) return FirstError();
    return Status::OK();
  }
  const int thread = PremeldThreadFor(item.seq, config_.premeld_threads);
  if (!pm_queues_[thread]->Push(std::move(item))) return FirstError();
  return Status::OK();
}

void ThreadedPipeline::Close() {
  if (closed_.exchange(true)) return;
  if (config_.premeld_threads == 0) {
    ring_.Close();
  } else {
    for (auto& q : pm_queues_) q->Close();
  }
}

void ThreadedPipeline::Join() {
  if (!started_) return;
  const size_t pm_count = pm_queues_.size();
  for (size_t i = 0; i < pm_count; ++i) {
    if (threads_[i].joinable()) threads_[i].join();
  }
  // All premeld outputs are in the hand-off ring now.
  ring_.Close();
  if (threads_.back().joinable()) threads_.back().join();
}

void ThreadedPipeline::Poison(const Status& status) {
  {
    MutexLock lock(error_mu_);
    if (first_error_.ok()) first_error_ = status;
  }
  poisoned_.store(true, std::memory_order_release);
  for (auto& q : pm_queues_) q->Close();
  ring_.Close();
  engine_.states().Shutdown();  // Wake premeld waiters.
}

Status ThreadedPipeline::FirstError() const {
  MutexLock lock(error_mu_);
  return first_error_.ok()
             ? Status::Aborted("pipeline closed")
             : first_error_;
}

void ThreadedPipeline::PremeldWorker(int thread_index) {
  BoundedQueue<StageItem>& queue = *pm_queues_[thread_index];
  WorkerStats& ws = *worker_stats_[thread_index];
  while (auto popped = queue.Pop()) {
    StageItem item = std::move(*popped);
    const uint64_t seq = item.seq;
    IntentionPtr intent;
    if (item.is_raw) {
      auto decoded = DecodeRaw(item.raw, &ws);
      if (!decoded.ok()) {
        Poison(decoded.status());
        return;
      }
      intent = std::move(*decoded);
    } else {
      intent = std::move(item.decoded);
    }
    if (intent->known_aborted) {
      if (!ring_.Push(seq, std::move(intent))) return;
      continue;
    }
    CpuStopwatch cpu;
    MeldWork work;
    auto out = RunPremeld(intent, engine_.states(), config_.premeld_threads,
                          config_.premeld_distance,
                          pm_allocs_[thread_index].get(), resolver_, &work,
                          config_.disable_graft_fastpath);
    if (!out.ok()) {
      if (!out.status().IsTimedOut()) Poison(out.status());
      return;
    }
    work.cpu_nanos = cpu.ElapsedNanos();
    ws.premeld += work;
    if (out->skipped) ws.skips++;
    if (out->intention->known_aborted) ws.aborts++;
    if (!ring_.Push(seq, std::move(out->intention))) return;
  }
}

void ThreadedPipeline::MeldWorker() {
  while (auto item = ring_.PopNext()) {
    auto decisions = engine_.Process(std::move(*item));
    if (!decisions.ok()) {
      Poison(decisions.status());
      return;
    }
    if (on_decision_) {
      for (const MeldDecision& d : *decisions) on_decision_(d);
    }
  }
  if (poisoned_.load(std::memory_order_acquire)) return;
  auto tail = engine_.Flush();
  if (!tail.ok()) {
    Poison(tail.status());
    return;
  }
  if (on_decision_) {
    for (const MeldDecision& d : *tail) on_decision_(d);
  }
}

PipelineStats ThreadedPipeline::StatsSnapshot() const {
  PipelineStats out = engine_.stats();
  // Per-worker counters, merged on snapshot (valid after Join; the joins
  // provide the happens-before edges). The embedded engine also tallies
  // premeld aborts when known-aborted intentions reach final meld; keep the
  // engine's count for decisions and report the stage-detected counts here.
  out.deserialize = feeder_stats_.deserialize;
  out.premeld = MeldWork{};
  out.premeld_skips = 0;
  out.premeld_aborts = 0;
  for (const auto& ws : worker_stats_) {
    out.deserialize += ws->deserialize;
    out.premeld += ws->premeld;
    out.premeld_skips += ws->skips;
    out.premeld_aborts += ws->aborts;
  }
  const SeqRing<IntentionPtr>::Stats ring_stats = ring_.stats();
  out.handoff_blocked_pushes = ring_stats.blocked_pushes;
  out.handoff_blocked_pops = ring_stats.blocked_pops;
  return out;
}

}  // namespace hyder
