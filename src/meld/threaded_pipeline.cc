#include "meld/threaded_pipeline.h"

#include "common/stopwatch.h"

namespace hyder {

namespace {
constexpr size_t kStageQueueCapacity = 64;

PipelineConfig EngineConfig(const PipelineConfig& config) {
  PipelineConfig engine = config;
  engine.premeld_threads = 0;  // Premeld runs in this class's workers.
  return engine;
}
}  // namespace

ThreadedPipeline::ThreadedPipeline(
    const PipelineConfig& config, DatabaseState initial,
    NodeResolver* resolver, std::function<void(const NodePtr&)> registrar,
    DecisionCallback on_decision)
    : config_(config),
      engine_(EngineConfig(config), std::move(initial), resolver, registrar),
      resolver_(resolver),
      on_decision_(std::move(on_decision)),
      ordered_(kStageQueueCapacity),
      next_ordered_(1) {
  for (int t = 0; t < config_.premeld_threads; ++t) {
    // Premeld thread ids 2..t+1, matching SequentialPipeline's fixed slots
    // so both engines generate identical ephemeral identities (§3.4).
    pm_allocs_.push_back(
        std::make_unique<EphemeralAllocator>(2 + uint32_t(t)));
    pm_allocs_.back()->registrar = registrar;
    pm_queues_.push_back(
        std::make_unique<BoundedQueue<IntentionPtr>>(kStageQueueCapacity));
  }
}

ThreadedPipeline::~ThreadedPipeline() {
  if (started_) {
    Close();
    Join();
  }
}

void ThreadedPipeline::Start() {
  started_ = true;
  for (int t = 0; t < config_.premeld_threads; ++t) {
    threads_.emplace_back([this, t] { PremeldWorker(t); });
  }
  threads_.emplace_back([this] { MeldWorker(); });
}

Status ThreadedPipeline::Feed(IntentionPtr intent) {
  if (poisoned_.load(std::memory_order_acquire)) return FirstError();
  if (closed_) return Status::InvalidArgument("pipeline already closed");
  if (intent->seq != fed_seq_ + 1) {
    return Status::InvalidArgument("intentions must be fed in log order");
  }
  fed_seq_ = intent->seq;
  if (config_.premeld_threads == 0) {
    if (!ordered_.Push(std::move(intent))) return FirstError();
    return Status::OK();
  }
  const int thread =
      PremeldThreadFor(fed_seq_, config_.premeld_threads);
  if (!pm_queues_[thread]->Push(std::move(intent))) return FirstError();
  return Status::OK();
}

void ThreadedPipeline::Close() {
  if (closed_) return;
  closed_ = true;
  if (config_.premeld_threads == 0) {
    ordered_.Close();
  } else {
    for (auto& q : pm_queues_) q->Close();
  }
}

void ThreadedPipeline::Join() {
  if (!started_) return;
  const size_t pm_count = pm_queues_.size();
  for (size_t i = 0; i < pm_count; ++i) {
    if (threads_[i].joinable()) threads_[i].join();
  }
  // All premeld outputs are in the reorder buffer / ordered queue now.
  ordered_.Close();
  if (threads_.back().joinable()) threads_.back().join();
}

void ThreadedPipeline::Poison(const Status& status) {
  {
    MutexLock lock(error_mu_);
    if (first_error_.ok()) first_error_ = status;
  }
  poisoned_.store(true, std::memory_order_release);
  for (auto& q : pm_queues_) q->Close();
  ordered_.Close();
  engine_.states().Shutdown();  // Wake premeld waiters.
}

Status ThreadedPipeline::FirstError() const {
  MutexLock lock(error_mu_);
  return first_error_.ok()
             ? Status::Aborted("pipeline closed")
             : first_error_;
}

void ThreadedPipeline::ReorderAdd(uint64_t seq, IntentionPtr intent) {
  {
    MutexLock lock(reorder_mu_);
    reorder_buffer_[seq] = std::move(intent);
  }
  // Only one thread pushes downstream at a time, so ready items leave in
  // strictly increasing sequence order.
  MutexLock push_lock(push_mu_);
  for (;;) {
    IntentionPtr ready;
    {
      MutexLock lock(reorder_mu_);
      auto it = reorder_buffer_.find(next_ordered_);
      if (it == reorder_buffer_.end()) break;
      ready = std::move(it->second);
      reorder_buffer_.erase(it);
      next_ordered_++;
    }
    if (!ordered_.Push(std::move(ready))) break;  // Poisoned/closing.
  }
}

void ThreadedPipeline::PremeldWorker(int thread_index) {
  BoundedQueue<IntentionPtr>& queue = *pm_queues_[thread_index];
  while (auto item = queue.Pop()) {
    IntentionPtr intent = std::move(*item);
    const uint64_t seq = intent->seq;
    if (intent->known_aborted) {
      ReorderAdd(seq, std::move(intent));
      continue;
    }
    CpuStopwatch cpu;
    MeldWork work;
    auto out = RunPremeld(intent, engine_.states(), config_.premeld_threads,
                          config_.premeld_distance,
                          pm_allocs_[thread_index].get(), resolver_, &work);
    if (!out.ok()) {
      if (!out.status().IsTimedOut()) Poison(out.status());
      return;
    }
    work.cpu_nanos = cpu.ElapsedNanos();
    {
      MutexLock lock(stats_mu_);
      pm_stats_.premeld += work;
      if (out->skipped) pm_stats_.premeld_skips++;
      if (out->intention->known_aborted) pm_stats_.premeld_aborts++;
    }
    ReorderAdd(seq, std::move(out->intention));
  }
}

void ThreadedPipeline::MeldWorker() {
  while (auto item = ordered_.Pop()) {
    auto decisions = engine_.Process(std::move(*item));
    if (!decisions.ok()) {
      Poison(decisions.status());
      return;
    }
    if (on_decision_) {
      for (const MeldDecision& d : *decisions) on_decision_(d);
    }
  }
  if (poisoned_.load(std::memory_order_acquire)) return;
  auto tail = engine_.Flush();
  if (!tail.ok()) {
    Poison(tail.status());
    return;
  }
  if (on_decision_) {
    for (const MeldDecision& d : *tail) on_decision_(d);
  }
}

PipelineStats ThreadedPipeline::StatsSnapshot() const {
  PipelineStats out = engine_.stats();
  {
    MutexLock lock(stats_mu_);
    out.premeld = pm_stats_.premeld;
    out.premeld_skips = pm_stats_.premeld_skips;
    // Premeld aborts are also tallied by the engine when the known-aborted
    // intention reaches final meld; keep the engine's count for decisions
    // and report the stage-detected count here.
    out.premeld_aborts = pm_stats_.premeld_aborts;
  }
  return out;
}

}  // namespace hyder
