#include "meld/threaded_pipeline.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "txn/codec.h"

namespace hyder {

namespace {
PipelineConfig EngineConfig(const PipelineConfig& config) {
  PipelineConfig engine = config;
  engine.premeld_threads = 0;  // Premeld runs in this class's workers.
  return engine;
}

/// Upper bound on sequences in flight between Dispatch and their decision:
/// every premeld input queue (t * qcap) plus one item held by each premeld
/// worker (t), the hand-off ring (qcap), the meld thread's in-hand item and
/// pending group member, with slack. Sizes the feed-timestamp ring so a
/// slot is never overwritten before its stamp is consumed.
size_t FeedTsSlots(const PipelineConfig& config) {
  const size_t qcap = std::max<size_t>(1, config.stage_queue_capacity);
  const size_t t = size_t(std::max(0, config.premeld_threads));
  return (t + 1) * qcap + t + 8;
}
}  // namespace

ThreadedPipeline::ThreadedPipeline(
    const PipelineConfig& config, DatabaseState initial,
    NodeResolver* resolver, std::function<void(const NodePtr&)> registrar,
    DecisionCallback on_decision, DecodeSink on_decode)
    : config_(config),
      engine_(EngineConfig(config), initial, resolver, registrar),
      resolver_(resolver),
      on_decision_(std::move(on_decision)),
      on_decode_(std::move(on_decode)),
      ring_(std::max<size_t>(1, config.stage_queue_capacity),
            initial.seq + 1),
      feed_ts_(FeedTsSlots(config)),
      durable_to_decision_us_(MetricsRegistry::Global().histogram(
          "pipeline.durable_to_decision_us")),
      fed_seq_(initial.seq) {
  for (int t = 0; t < config_.premeld_threads; ++t) {
    // Premeld thread ids 2..t+1, matching SequentialPipeline's fixed slots
    // so both engines generate identical ephemeral identities (§3.4).
    pm_allocs_.push_back(
        std::make_unique<EphemeralAllocator>(2 + uint32_t(t)));
    pm_allocs_.back()->registrar = registrar;
    pm_queues_.push_back(std::make_unique<BoundedQueue<StageItem>>(
        std::max<size_t>(1, config.stage_queue_capacity)));
    worker_stats_.push_back(std::make_unique<WorkerStats>());
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  ring_.SetBlockedHistograms(
      registry.histogram("pipeline.handoff_push_blocked_us"),
      registry.histogram("pipeline.handoff_pop_blocked_us"));
  metrics_ = registry.RegisterProvider(
      "pipeline", [this](const MetricsRegistry::Emit& emit) {
        StatsSnapshot().EmitTo("", emit);
      });
}

ThreadedPipeline::~ThreadedPipeline() {
  if (started_) {
    Close();
    Join();
  }
}

void ThreadedPipeline::Start() {
  started_ = true;
  for (int t = 0; t < config_.premeld_threads; ++t) {
    threads_.emplace_back([this, t] { PremeldWorker(t); });
  }
  threads_.emplace_back([this] { MeldWorker(); });
}

Result<IntentionPtr> ThreadedPipeline::DecodeRaw(const RawIntention& raw,
                                                 WorkerStats* stats) {
  if (config_.stage_probe) {
    HYDER_RETURN_IF_ERROR(
        config_.stage_probe(PipelineStage::kDecode, raw.seq));
  }
  TraceSpan span(TraceStage::kDecode, raw.seq);
  CpuStopwatch cpu;
  std::vector<NodePtr> nodes;
  HYDER_ASSIGN_OR_RETURN(
      IntentionPtr intent,
      DeserializeIntention(raw.payload, raw.seq, raw.block_count, resolver_,
                           raw.txn_id, &nodes));
  stats->deserialize.cpu_nanos += cpu.ElapsedNanos();
  stats->deserialize.nodes_visited += intent->node_count;
  if (on_decode_) on_decode_(raw.seq, intent, std::move(nodes));
  return intent;
}

Status ThreadedPipeline::Feed(IntentionPtr intent) {
  StageItem item;
  item.seq = intent->seq;
  item.decoded = std::move(intent);
  return Dispatch(std::move(item));
}

Status ThreadedPipeline::FeedRaw(RawIntention raw) {
  StageItem item;
  item.seq = raw.seq;
  item.raw = std::move(raw);
  item.is_raw = true;
  return Dispatch(std::move(item));
}

Status ThreadedPipeline::Dispatch(StageItem item) {
  if (poisoned_.load(std::memory_order_acquire)) return FirstError();
  if (closed_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("pipeline already closed");
  }
  if (item.seq != fed_seq_ + 1) {
    return Status::InvalidArgument("intentions must be fed in log order");
  }
  fed_seq_ = item.seq;
  // Stamp for the durable->decision histogram: the intention is durable
  // (read back from the log) when it reaches the pipeline.
  feed_ts_[item.seq % feed_ts_.size()].store(Stopwatch::NowNanos(),
                                             std::memory_order_release);
  if (config_.premeld_threads == 0) {
    // No premeld stage: decode inline on the feeder (the current
    // single-threaded path) and hand straight to the meld thread.
    IntentionPtr intent;
    if (item.is_raw) {
      auto decoded = DecodeRaw(item.raw, &feeder_stats_);
      if (!decoded.ok()) {
        Poison(decoded.status());
        return decoded.status();
      }
      intent = std::move(*decoded);
    } else {
      intent = std::move(item.decoded);
    }
    if (!ring_.Push(item.seq, std::move(intent))) return FirstError();
    return Status::OK();
  }
  const int thread = PremeldThreadFor(item.seq, config_.premeld_threads);
  if (!pm_queues_[thread]->Push(std::move(item))) return FirstError();
  return Status::OK();
}

void ThreadedPipeline::Close() {
  if (closed_.exchange(true)) return;
  if (config_.premeld_threads == 0) {
    ring_.Close();
  } else {
    for (auto& q : pm_queues_) q->Close();
  }
}

void ThreadedPipeline::Join() {
  if (!started_) return;
  const size_t pm_count = pm_queues_.size();
  for (size_t i = 0; i < pm_count; ++i) {
    if (threads_[i].joinable()) threads_[i].join();
  }
  // All premeld outputs are in the hand-off ring now.
  ring_.Close();
  if (threads_.back().joinable()) threads_.back().join();
  // Workers are gone: StatsSnapshot may merge their counters from now on
  // (the joins above ordered the writes before this store).
  joined_.store(true, std::memory_order_release);
}

void ThreadedPipeline::Poison(const Status& status) {
  {
    MutexLock lock(error_mu_);
    if (first_error_.ok()) first_error_ = status;
  }
  poisoned_.store(true, std::memory_order_release);
  for (auto& q : pm_queues_) q->Close();
  ring_.Close();
  engine_.states().Shutdown();  // Wake premeld waiters.
}

Status ThreadedPipeline::FirstError() const {
  MutexLock lock(error_mu_);
  return first_error_.ok()
             ? Status::Aborted("pipeline closed")
             : first_error_;
}

void ThreadedPipeline::PremeldWorker(int thread_index) {
  BoundedQueue<StageItem>& queue = *pm_queues_[thread_index];
  WorkerStats& ws = *worker_stats_[thread_index];
  while (auto popped = queue.Pop()) {
    StageItem item = std::move(*popped);
    const uint64_t seq = item.seq;
    IntentionPtr intent;
    if (item.is_raw) {
      auto decoded = DecodeRaw(item.raw, &ws);
      if (!decoded.ok()) {
        Poison(decoded.status());
        return;
      }
      intent = std::move(*decoded);
    } else {
      intent = std::move(item.decoded);
    }
    if (intent->known_aborted) {
      if (!ring_.Push(seq, std::move(intent))) return;
      continue;
    }
    if (config_.stage_probe) {
      // Same boundary the sequential engine probes before its premeld
      // stage; the embedded engine (t == 0) does not re-fire it.
      Status probed = config_.stage_probe(PipelineStage::kPremeld, seq);
      if (!probed.ok()) {
        Poison(probed);
        return;
      }
    }
    TraceSpan span(TraceStage::kPremeld, seq);
    CpuStopwatch cpu;
    MeldWork work;
    auto out = RunPremeld(intent, engine_.states(), config_.premeld_threads,
                          config_.premeld_distance,
                          pm_allocs_[thread_index].get(), resolver_, &work,
                          config_.disable_graft_fastpath);
    if (!out.ok()) {
      if (!out.status().IsTimedOut()) Poison(out.status());
      return;
    }
    work.cpu_nanos = cpu.ElapsedNanos();
    ws.premeld += work;
    if (out->skipped) ws.skips++;
    if (out->intention->known_aborted) ws.aborts++;
    ws.killed_nodes += out->killed_nodes;
    ws.killed_nodes_materialized += out->killed_nodes_materialized;
    {
      // The knobs this worker just consumed; the embedded engine cannot
      // stamp them (it runs with premeld_threads == 0).
      ConfigEcho echo;
      echo.premeld_threads = config_.premeld_threads;
      echo.premeld_distance = config_.premeld_distance;
      echo.disable_graft_fastpath = config_.disable_graft_fastpath ? 1 : 0;
      ws.echo.Observe(echo);
    }
    if (!ring_.Push(seq, std::move(out->intention))) return;
  }
}

void ThreadedPipeline::MeldWorker() {
  while (auto item = ring_.PopNext()) {
    // Snapshot-consistency contract (see StatsSnapshot): bump intentions
    // before melding, the decision counters after, so a concurrent reader
    // never sees committed + aborted > intentions.
    // relaxed: the counter itself carries no payload; the <= invariant
    // only needs this store to precede the release stores of the decision
    // counters, which program order on this single worker already gives
    // the snapshot's paired acquire loads.
    meld_intentions_.fetch_add(1, std::memory_order_relaxed);
    auto decisions = engine_.Process(std::move(*item));
    if (!decisions.ok()) {
      Poison(decisions.status());
      return;
    }
    DeliverDecisions(*decisions);
  }
  if (poisoned_.load(std::memory_order_acquire)) return;
  auto tail = engine_.Flush();
  if (!tail.ok()) {
    Poison(tail.status());
    return;
  }
  DeliverDecisions(*tail);
}

void ThreadedPipeline::DeliverDecisions(
    const std::vector<MeldDecision>& decisions) {
  if (!decisions.empty()) {
    const uint64_t now = Stopwatch::NowNanos();
    uint64_t committed = 0;
    uint64_t aborted = 0;
    for (const MeldDecision& d : decisions) {
      if (d.committed) {
        committed++;
      } else {
        aborted++;
      }
      const uint64_t fed =
          feed_ts_[d.seq % feed_ts_.size()].load(std::memory_order_acquire);
      if (fed != 0 && now > fed) {
        durable_to_decision_us_->Add((now - fed) / 1000);
      }
    }
    if (committed != 0) {
      meld_committed_.fetch_add(committed, std::memory_order_release);
    }
    if (aborted != 0) {
      meld_aborted_.fetch_add(aborted, std::memory_order_release);
    }
  }
  if (on_decision_) {
    for (const MeldDecision& d : decisions) on_decision_(d);
  }
}

PipelineStats ThreadedPipeline::StatsSnapshot() const {
  if (!joined_.load(std::memory_order_acquire)) {
    // Mid-run: the engine's PipelineStats and the per-worker counters are
    // thread-confined until Join, so report only the atomically mirrored
    // headline counters plus the (internally locked) ring counters.
    // Read order matters: decision counters first (acquire), intentions
    // last — paired with MeldWorker's intentions-before / decisions-after
    // stores, this guarantees committed + aborted <= intentions.
    PipelineStats out;
    out.committed = meld_committed_.load(std::memory_order_acquire);
    out.aborted = meld_aborted_.load(std::memory_order_acquire);
    // relaxed: intentions only needs monotonicity here; the acquire loads
    // above pair with the worker's release stores for the <= invariant.
    out.intentions = meld_intentions_.load(std::memory_order_relaxed);
    const SeqRing<IntentionPtr>::Stats ring_stats = ring_.stats();
    out.handoff_blocked_pushes = ring_stats.blocked_pushes;
    out.handoff_blocked_pops = ring_stats.blocked_pops;
    out.handoff_blocked_push_nanos = ring_stats.blocked_push_nanos;
    out.handoff_blocked_pop_nanos = ring_stats.blocked_pop_nanos;
    return out;
  }
  PipelineStats out = engine_.stats();
  // Per-worker counters, merged on snapshot (valid after Join; the joins
  // provide the happens-before edges). The embedded engine also tallies
  // premeld aborts when known-aborted intentions reach final meld; keep the
  // engine's count for decisions and report the stage-detected counts here.
  out.deserialize = feeder_stats_.deserialize;
  out.premeld = MeldWork{};
  out.premeld_skips = 0;
  out.premeld_aborts = 0;
  for (const auto& ws : worker_stats_) {
    out.deserialize += ws->deserialize;
    out.premeld += ws->premeld;
    out.premeld_skips += ws->skips;
    out.premeld_aborts += ws->aborts;
    out.premeld_killed_nodes += ws->killed_nodes;
    out.premeld_killed_nodes_materialized += ws->killed_nodes_materialized;
    out.config_echo.Observe(ws->echo);
  }
  const SeqRing<IntentionPtr>::Stats ring_stats = ring_.stats();
  out.handoff_blocked_pushes = ring_stats.blocked_pushes;
  out.handoff_blocked_pops = ring_stats.blocked_pops;
  out.handoff_blocked_push_nanos = ring_stats.blocked_push_nanos;
  out.handoff_blocked_pop_nanos = ring_stats.blocked_pop_nanos;
  return out;
}

}  // namespace hyder
