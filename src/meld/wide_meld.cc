#include "meld/wide_meld.h"

#include <algorithm>
#include <string>
#include <vector>

#include "tree/wide_ops.h"

namespace hyder {

namespace {

/// A slot's data lifted out of its page: the unit the multi-way split and
/// the survivor collection move around.
struct SlotData {
  bool present = false;
  Key key = 0;
  std::string payload;
  WideSlotMeta meta;

  static SlotData From(const WideSlot& s) {
    SlotData d;
    d.present = true;
    d.key = s.key;
    d.payload = std::string(s.payload());
    d.meta = s.meta;
    return d;
  }
};

class WideMelder {
 public:
  WideMelder(const MeldContext& ctx, const Intention& intent)
      : ctx_(ctx), intent_(intent) {}

  Result<Ref> Run(const Ref& base_root) {
    Ref melded = base_root;
    if (!intent_.root.IsNull()) {
      HYDER_ASSIGN_OR_RETURN(melded, Rec(intent_.root, base_root));
    }
    HYDER_RETURN_IF_ERROR(ApplyTombstones(base_root, &melded));
    return melded;
  }

 private:
  bool Inside(const Node* n) const {
    return n != nullptr &&
           (n->owner() == ctx_.out_tag || intent_.Inside(*n));
  }

  /// Wire-v3 member edges arrive lazy; materialize them canonically
  /// through the intention's flat views before the Inside test (see the
  /// binary Melder's NormalizeIntentEdge).
  void NormalizeIntentEdge(Ref* e) const {
    if (intent_.flats.empty() || e->node || !e->vn.IsLogged()) return;
    if (NodePtr n = intent_.ResolveFlat(e->vn)) e->node = std::move(n);
  }
  bool BaseInside(const Node* n) const {
    return ctx_.group_base != nullptr && n != nullptr &&
           ctx_.group_base->Inside(*n);
  }
  bool Serializable() const {
    return intent_.isolation == IsolationLevel::kSerializable;
  }
  void Visit() const {
    if (ctx_.work != nullptr) ctx_.work->nodes_visited++;
  }

  /// Typed-provenance abort for slot-granularity content conflicts (the
  /// slot index is the wide layout's extra forensic dimension). See the
  /// binary Melder::Abort: allocation-free, `msg` a short static literal.
  Status AbortSlot(AbortCause cause, Key key, int slot,
                   const char* msg) const {
    if (ctx_.abort_sink != nullptr) {
      AbortInfo& a = *ctx_.abort_sink;
      a.cause = cause;
      a.conflict = cause;
      a.key_kind = AbortKeyKind::kUserKey;
      a.key = key;
      a.slot = slot;
    }
    return Status::Aborted(msg);
  }

  /// Page-granularity structural abort: no single user key exists, so the
  /// provenance carries the base page id instead.
  Status AbortPage(AbortCause cause, uint64_t page_raw,
                   const char* msg) const {
    if (ctx_.abort_sink != nullptr) {
      AbortInfo& a = *ctx_.abort_sink;
      a.cause = cause;
      a.conflict = cause;
      a.key_kind = AbortKeyKind::kPageId;
      a.key = page_raw;
      a.slot = -1;
    }
    return Status::Aborted(msg);
  }

  Result<NodePtr> Materialize(const Ref& e) const {
    if (e.node) return e.node;
    if (e.vn.IsNull()) return NodePtr();
    if (ctx_.resolver == nullptr) {
      return Status::Internal("meld: lazy edge with no resolver");
    }
    return ctx_.resolver->Resolve(e.vn);
  }

  NodePtr NewEphemeralPage(int cap) const {
    NodePtr e = MakeWideNode(cap);
    e->set_owner(ctx_.out_tag);
    ctx_.alloc->Assign(e);
    if (ctx_.work != nullptr) ctx_.work->ephemeral_created++;
    return e;
  }

  /// Page-granularity structural (phantom) validation, the wide analog of
  /// the binary subtree_read check: a page carrying any structural-read
  /// mark (page flag or gap flag) demands its base page be exactly the
  /// version it was derived from. Reaching this check means the graft
  /// fast path did not fire, so in state mode the versions diverged.
  Status CheckPagePhantom(const Node* i, const Node* l) const {
    if (ctx_.work != nullptr) ctx_.work->conflict_checks++;
    if (Serializable() && i->page_structural_read()) {
      if (ctx_.mode == MeldMode::kState) {
        if (i->ssv() != l->vn()) {
          return AbortPage(AbortCause::kAbortPhantom, i->vn().raw(),
                           "phantom");
        }
      } else if (BaseInside(l)) {
        return AbortPage(AbortCause::kAbortPhantom, i->vn().raw(),
                         "group phantom");
      }
    }
    return Status::OK();
  }

  /// Slot-granularity content validation: write-write and (serializable)
  /// read-write conflicts between the intention's slot and the base's
  /// current slot for the same key. Group mode scopes the check to slots
  /// the base intention actually wrote, as in the binary melder.
  Status CheckSlotConflict(const SlotData& eq, const Node* l,
                           const WideSlot& ls, int slot) const {
    if (ctx_.work != nullptr) ctx_.work->conflict_checks++;
    const bool eligible =
        ctx_.mode == MeldMode::kState || (BaseInside(l) && ls.altered());
    const bool content_changed = ls.meta.cv != eq.meta.base_cv;
    if (eligible && content_changed) {
      if (eq.meta.flags & kFlagAltered) {
        return AbortSlot(AbortCause::kAbortWriteWrite, eq.key, slot,
                         "write-write");
      }
      if (Serializable() && (eq.meta.flags & kFlagRead)) {
        return AbortSlot(AbortCause::kAbortReadWrite, eq.key, slot,
                         "read-write");
      }
    }
    return Status::OK();
  }

  static bool SameEdge(const Ref& melded, const Ref& base) {
    if (melded.node && base.node) return melded.node.get() == base.node.get();
    if (!melded.vn.IsNull() || !base.vn.IsNull()) {
      return melded.vn == base.vn;
    }
    return melded.IsNull() && base.IsNull();
  }

  // --- Split machinery -----------------------------------------------

  struct SplitOut {
    Ref less;
    SlotData eq;
    Ref greater;
  };

  /// Builds the split piece holding `n`'s slots [slot_lo, slot_hi) and the
  /// matching children, with the inner-most child edge replaced by
  /// `replacement` (`replace_first` selects which end faces the split
  /// key). An empty slot range collapses to the replacement edge itself.
  ///
  /// Piece pages are ephemeral with a null page ssv: like the binary
  /// split copies, their subtree is incomplete (outside references were
  /// cut), so the graft fast path must never return them wholesale. Slot
  /// metadata survives so per-slot conflict checks still fire; page flags
  /// and in-range gap flags survive so structural dependencies stay
  /// conservative (a null ssv page with marks fails the phantom check).
  Ref MakePiece(const Node* n, int slot_lo, int slot_hi, Ref replacement,
                bool replace_first) {
    const WideExt& e = *n->wide();
    if (slot_lo >= slot_hi) return replacement;
    NodePtr p = NewEphemeralPage(e.cap());
    WideExt& pe = *p->wide();
    const int cnt = slot_hi - slot_lo;
    pe.set_count(cnt);
    for (int j = 0; j < cnt; ++j) pe.slot(j).CopyFrom(e.slot(slot_lo + j));
    for (int j = 0; j <= cnt; ++j) {
      pe.child(j).Reset(e.child(slot_lo + j).GetLocal());
      pe.set_gap_read(j, e.gap_read(slot_lo + j));
    }
    if (replace_first) {
      pe.child(0).Reset(std::move(replacement));
    } else {
      pe.child(cnt).Reset(std::move(replacement));
    }
    p->set_flags(n->flags());
    // ssv stays null (incomplete subtree; no grafting).
    return Ref::To(p);
  }

  /// Splits the in-intention subtree at `edge` around key `k`, the wide
  /// analog of the binary Split. Outside references contribute nothing:
  /// their meld value is "the base wins".
  Result<SplitOut> SplitOne(Ref edge, Key k) {
    SplitOut out;
    NormalizeIntentEdge(&edge);
    const Node* n = edge.node.get();
    if (!Inside(n)) return out;
    Visit();
    if (ctx_.work != nullptr) ctx_.work->splits++;
    if (!n->is_wide()) {
      return Status::Internal("meld: binary node inside wide intention");
    }
    const WideExt& e = *n->wide();
    const WideFind f = WideSearchPage(*n, k);
    if (f.found) {
      // The split key is a slot of this page: the flanking children go
      // whole to their sides, no recursion needed.
      out.eq = SlotData::From(e.slot(f.index));
      out.less = MakePiece(n, 0, f.index, e.child(f.index).GetLocal(),
                           /*replace_first=*/false);
      out.greater = MakePiece(n, f.index + 1, e.count(),
                              e.child(f.index + 1).GetLocal(),
                              /*replace_first=*/true);
      return out;
    }
    HYDER_ASSIGN_OR_RETURN(SplitOut inner,
                           SplitOne(e.child(f.index).GetLocal(), k));
    out.eq = std::move(inner.eq);
    out.less = MakePiece(n, 0, f.index, std::move(inner.less),
                         /*replace_first=*/false);
    out.greater = MakePiece(n, f.index, e.count(), std::move(inner.greater),
                            /*replace_first=*/true);
    return out;
  }

  // --- Missing-interval handling -------------------------------------

  /// The base tree has no content in this interval but the intention
  /// does; see the binary IntoMissing for the mode semantics.
  Result<Ref> IntoMissing(const Ref& i_edge) {
    if (ctx_.mode == MeldMode::kGroup) return i_edge;
    std::vector<SlotData> kept;
    HYDER_RETURN_IF_ERROR(CollectSurvivors(i_edge, &kept));
    if (kept.empty()) return Ref::Null();
    const NodePtr& top = i_edge.node;
    const int cap = top->wide()->cap();
    int height = 1;
    while (SubtreeCapacity(cap, height) < kept.size()) ++height;
    return BuildWideBalanced(kept, 0, kept.size(), cap, height);
  }

  Status CollectSurvivors(Ref edge, std::vector<SlotData>* kept) {
    NormalizeIntentEdge(&edge);
    const Node* n = edge.node.get();
    if (!Inside(n)) return Status::OK();  // Outside/lazy: deleted region.
    Visit();
    if (!n->is_wide()) {
      return Status::Internal("meld: binary node inside wide intention");
    }
    if (Serializable() && n->page_structural_read()) {
      // The page's structural dependencies cover intervals that existed in
      // the snapshot and are gone from the base: a scanned region was
      // concurrently deleted.
      return AbortPage(AbortCause::kAbortPhantom, n->vn().raw(),
                       "scan vs delete");
    }
    const WideExt& e = *n->wide();
    for (int j = 0; j <= e.count(); ++j) {
      HYDER_RETURN_IF_ERROR(CollectSurvivors(e.child(j).GetLocal(), kept));
      if (j == e.count()) break;
      const WideSlot& s = e.slot(j);
      if (!s.meta.ssv.IsNull() || !s.meta.base_cv.IsNull()) {
        // The key existed in the snapshot but is gone from the base state:
        // the subtree this intention grafted onto was concurrently deleted.
        if (s.altered()) {
          return AbortSlot(AbortCause::kAbortGraft, s.key, j,
                           "write vs delete");
        }
        if (Serializable() && s.read_dependent()) {
          return AbortSlot(AbortCause::kAbortGraft, s.key, j,
                           "read vs delete");
        }
        // Path copy only: the concurrent delete wins; drop it.
      } else if (s.altered()) {
        kept->push_back(SlotData::From(s));  // Fresh insert: keep.
      }
    }
    return Status::OK();
  }

  /// Slots a wide subtree of height `h` can hold (cap slots per page).
  static uint64_t SubtreeCapacity(int cap, int h) {
    uint64_t s = 0;
    for (int level = 0; level < h; ++level) {
      s = uint64_t(cap) + (uint64_t(cap) + 1) * s;
    }
    return s;
  }

  /// Deterministically rebuilds kept inserts (already key-sorted) into a
  /// wide subtree of the given height: minimal slots at the root, evenly
  /// (left-heavy) distributed children.
  Ref BuildWideBalanced(const std::vector<SlotData>& items, size_t lo,
                        size_t hi, int cap, int height) {
    const size_t n = hi - lo;
    if (n == 0) return Ref::Null();
    NodePtr p = NewEphemeralPage(cap);
    WideExt& pe = *p->wide();
    if (n <= size_t(cap)) {
      pe.set_count(static_cast<int>(n));
      for (size_t j = 0; j < n; ++j) FillSlot(pe.slot(j), items[lo + j]);
      return Ref::To(p);
    }
    const uint64_t child_cap = SubtreeCapacity(cap, height - 1);
    int k = 1;
    while (uint64_t(k) + (uint64_t(k) + 1) * child_cap < n) ++k;
    pe.set_count(k);
    const size_t rem = n - size_t(k);
    const size_t base = rem / size_t(k + 1);
    const size_t extra = rem % size_t(k + 1);
    size_t cursor = lo;
    for (int c = 0; c <= k; ++c) {
      const size_t size_c = base + (size_t(c) < extra ? 1 : 0);
      pe.child(c).Reset(
          BuildWideBalanced(items, cursor, cursor + size_c, cap, height - 1));
      cursor += size_c;
      if (c < k) {
        FillSlot(pe.slot(c), items[cursor]);
        ++cursor;
      }
    }
    return Ref::To(p);
  }

  static void FillSlot(WideSlot& s, const SlotData& d) {
    s.key = d.key;
    s.set_payload(d.payload);
    s.meta.flags = d.meta.flags;
    s.meta.cv = d.meta.cv;
    // ssv/base_cv stay null: this is an insert.
    s.meta.ssv = VersionId();
    s.meta.base_cv = VersionId();
  }

  // --- The per-page merge --------------------------------------------

  /// True when page `i` and page `l` carry the same key sequence — the
  /// common conflict-zone shape (content divergence without concurrent
  /// splits), merged slot-by-slot without any split copies.
  static bool SameKeySet(const Node* i, const Node* l) {
    const WideExt& ie = *i->wide();
    const WideExt& le = *l->wide();
    if (ie.count() != le.count()) return false;
    for (int j = 0; j < ie.count(); ++j) {
      if (ie.slot(j).key != le.slot(j).key) return false;
    }
    return true;
  }

  /// Builds the merged output page for base page `l` given the per-slot
  /// intention data `eqs` and the already-melded children. `i_top` is the
  /// aligned intention page when the fast aligned path matched (it
  /// supplies page flags, gap flags and group-mode page provenance);
  /// null on the split path, where page metadata degrades conservatively
  /// (null ssv, kFlagSubtreeRead if the intention side had structural
  /// marks that cannot be mapped onto `l`'s layout).
  Result<Ref> MergePage(const Node* i_top, bool i_marks, const NodePtr& l,
                        const std::vector<SlotData>& eqs,
                        std::vector<Ref> children) {
    const WideExt& le = *l->wide();
    // Collapse to base: no intention slot contributes a payload, no
    // readset metadata must survive (states never need it; transaction
    // outputs only when some slot, page flag or gap flag carries it) and
    // the structure below is unchanged — the wide CanCollapseToBase.
    bool collapse = true;
    if (!ctx_.output_is_state) {
      if (i_marks) collapse = false;
      if (i_top != nullptr &&
          (i_top->flags() != 0 || i_top->wide()->any_gap_read())) {
        collapse = false;
      }
    }
    for (int j = 0; collapse && j < le.count(); ++j) {
      if (!eqs[j].present) continue;
      if (eqs[j].meta.flags & kFlagAltered) collapse = false;
      if (!ctx_.output_is_state && eqs[j].meta.flags != 0) collapse = false;
    }
    for (int j = 0; collapse && j <= le.count(); ++j) {
      if (!SameEdge(children[j], le.child(j).GetLocal())) collapse = false;
    }
    if (collapse) return Ref::To(l);

    NodePtr out = NewEphemeralPage(le.cap());
    WideExt& oe = *out->wide();
    oe.set_count(le.count());
    bool any_altered = false;
    for (int j = 0; j < le.count(); ++j) {
      const WideSlot& ls = le.slot(j);
      const SlotData& eq = eqs[j];
      WideSlot& os = oe.slot(j);
      os.key = ls.key;
      const bool i_altered = eq.present && (eq.meta.flags & kFlagAltered);
      any_altered = any_altered || i_altered;
      os.set_payload(i_altered ? std::string_view(eq.payload)
                               : ls.payload());
      if (ctx_.mode == MeldMode::kState) {
        os.meta.ssv = l->vn();
        os.meta.base_cv = ls.meta.cv;
        os.meta.cv = i_altered ? eq.meta.cv : ls.meta.cv;
        os.meta.flags = eq.present ? eq.meta.flags : 0;
      } else {
        // Group mode (§4): merged metadata must make final meld validate
        // the maximum of the two members' conflict zones.
        const bool l_is_base_write = BaseInside(l.get()) && ls.altered();
        os.meta.cv = i_altered ? eq.meta.cv : ls.meta.cv;
        uint8_t flags = eq.present ? eq.meta.flags : 0;
        if (i_altered || l_is_base_write) flags |= kFlagAltered;
        if (BaseInside(l.get())) flags |= ls.meta.flags & kFlagRead;
        os.meta.flags = flags;
        if (eq.present &&
            intent_.snapshot_seq <= ctx_.group_base->snapshot_seq) {
          os.meta.ssv = eq.meta.ssv;
          os.meta.base_cv = eq.meta.base_cv;
        } else if (BaseInside(l.get())) {
          os.meta.ssv = ls.meta.ssv;
          os.meta.base_cv = ls.meta.base_cv;
        } else {
          os.meta.ssv = l->vn();
          os.meta.base_cv = ls.meta.cv;
        }
      }
    }
    for (int j = 0; j <= le.count(); ++j) {
      oe.child(j).Reset(std::move(children[j]));
    }

    // Page-level metadata.
    uint8_t page_flags = i_top != nullptr ? i_top->flags() : 0;
    if (i_top == nullptr && i_marks) page_flags |= kFlagSubtreeRead;
    if (ctx_.mode == MeldMode::kState) {
      out->set_ssv(l->vn());
      out->set_flags(page_flags);
    } else {
      uint8_t flags = page_flags;
      if (any_altered) flags |= kFlagAltered | kFlagSubtreeHasWrites;
      if (BaseInside(l.get())) {
        flags |= l->flags() & (kFlagRead | kFlagSubtreeRead |
                               kFlagSubtreeHasWrites);
      }
      out->set_flags(flags);
      if (i_top != nullptr &&
          intent_.snapshot_seq <= ctx_.group_base->snapshot_seq) {
        out->set_ssv(i_top->ssv());
      } else if (BaseInside(l.get())) {
        out->set_ssv(l->ssv());
      } else {
        out->set_ssv(l->vn());
      }
    }
    // Gap flags: aligned intervals carry the intention's gap marks into
    // the output (they feed later melds' phantom checks); the split path
    // already degraded them to the page-level flag above.
    if (i_top != nullptr) {
      const WideExt& ie = *i_top->wide();
      for (int j = 0; j <= ie.count(); ++j) {
        oe.set_gap_read(j, ie.gap_read(j));
      }
    }
    return Ref::To(out);
  }

  // --- The merge recursion -------------------------------------------

  Result<Ref> Rec(Ref i_edge, const Ref& l_edge) {
    NormalizeIntentEdge(&i_edge);
    const Node* i = i_edge.node.get();
    if (!Inside(i)) {
      // Null, lazy, or a snapshot pointer: the intention asserts nothing
      // in this interval; the base state's content stands.
      return l_edge;
    }
    Visit();
    if (!i->is_wide()) {
      return Status::Internal("meld: binary node inside wide intention");
    }
    if (l_edge.IsNull()) return IntoMissing(i_edge);
    HYDER_ASSIGN_OR_RETURN(NodePtr l, Materialize(l_edge));
    if (!l->is_wide()) {
      return Status::Internal("meld: mixed tree layouts (wide vs binary)");
    }

    if (!ctx_.disable_graft_fastpath && !i->ssv().IsNull() &&
        i->ssv() == l->vn()) {
      // Page graft fast path: the base still holds the exact page version
      // this subtree was derived from.
      if (ctx_.work != nullptr) ctx_.work->grafts++;
      if (ctx_.output_is_state && !i->subtree_has_writes()) {
        return Ref::To(l);
      }
      return i_edge;
    }

    HYDER_RETURN_IF_ERROR(CheckPagePhantom(i, l.get()));

    const WideExt& le = *l->wide();
    if (SameKeySet(i, l.get())) {
      // Aligned pages: merge slot-by-slot, no split copies.
      const WideExt& ie = *i->wide();
      std::vector<SlotData> eqs(le.count());
      for (int j = 0; j < le.count(); ++j) {
        eqs[j] = SlotData::From(ie.slot(j));
        HYDER_RETURN_IF_ERROR(CheckSlotConflict(eqs[j], l.get(),
                                                le.slot(j), j));
      }
      std::vector<Ref> children(le.count() + 1);
      for (int j = 0; j <= le.count(); ++j) {
        HYDER_ASSIGN_OR_RETURN(
            children[j], Rec(ie.child(j).GetLocal(), le.child(j).GetLocal()));
      }
      return MergePage(i, /*i_marks=*/false, l, eqs, std::move(children));
    }

    // Layouts diverged (concurrent splits/collapses): split the intention
    // content by the base page's keys and meld piecewise. The intention
    // side's structural marks cannot be mapped onto the base layout, so
    // they degrade to a page-level mark on the output.
    const bool i_marks = i->page_structural_read();
    std::vector<SlotData> eqs(le.count());
    std::vector<Ref> pieces(le.count() + 1);
    Ref rest = i_edge;
    for (int j = 0; j < le.count(); ++j) {
      HYDER_ASSIGN_OR_RETURN(SplitOut sp, SplitOne(rest, le.slot(j).key));
      pieces[j] = std::move(sp.less);
      eqs[j] = std::move(sp.eq);
      rest = std::move(sp.greater);
    }
    pieces[le.count()] = std::move(rest);
    for (int j = 0; j < le.count(); ++j) {
      if (eqs[j].present) {
        HYDER_RETURN_IF_ERROR(CheckSlotConflict(eqs[j], l.get(),
                                                le.slot(j), j));
      }
    }
    std::vector<Ref> children(le.count() + 1);
    for (int j = 0; j <= le.count(); ++j) {
      HYDER_ASSIGN_OR_RETURN(children[j],
                             Rec(pieces[j], le.child(j).GetLocal()));
    }
    return MergePage(/*i_top=*/nullptr, i_marks, l, eqs,
                     std::move(children));
  }

  // --- Tombstones ----------------------------------------------------

  Status ApplyTombstones(const Ref& base_root, Ref* melded) {
    if (intent_.tombstones.empty()) return Status::OK();
    for (const Tombstone& t : intent_.tombstones) {
      // Locate the key in the base tree.
      HYDER_ASSIGN_OR_RETURN(NodePtr cur, Materialize(base_root));
      bool found = false;
      int found_idx = 0;
      while (cur) {
        Visit();
        const WideFind f = WideSearchPage(*cur, t.key);
        if (f.found) {
          found = true;
          found_idx = f.index;
          break;
        }
        if (cur->wide()->child(f.index).IsNullEdge()) {
          cur = nullptr;
          break;
        }
        HYDER_ASSIGN_OR_RETURN(cur,
                               cur->wide()->child(f.index).Get(ctx_.resolver));
      }
      if (found) {
        const WideSlot& s = cur->wide()->slot(found_idx);
        const bool eligible =
            ctx_.mode == MeldMode::kState ||
            (BaseInside(cur.get()) && s.altered());
        if (eligible && s.meta.cv != t.base_cv) {
          return AbortSlot(AbortCause::kAbortWriteWrite, t.key, found_idx,
                           "delete write-write");
        }
      } else {
        if (ctx_.mode == MeldMode::kState && !t.base_cv.IsNull()) {
          return AbortSlot(AbortCause::kAbortWriteWrite, t.key, -1,
                           "delete-delete");
        }
      }
      // Apply to the melded tree.
      TreeOpStats delete_stats;
      CowContext cc;
      cc.owner = ctx_.out_tag;
      cc.resolver = ctx_.resolver;
      cc.vn_alloc = ctx_.alloc;
      cc.preserve_owners = &intent_.inside;
      cc.stats = &delete_stats;
      HYDER_ASSIGN_OR_RETURN(*melded, TreeRemove(cc, *melded, t.key,
                                                 nullptr, nullptr, nullptr));
      if (ctx_.work != nullptr) {
        ctx_.work->nodes_visited += delete_stats.nodes_visited;
        ctx_.work->ephemeral_created += delete_stats.nodes_created;
      }
    }
    return Status::OK();
  }

  const MeldContext& ctx_;
  const Intention& intent_;
};

}  // namespace

Result<Ref> RunWideMeld(const MeldContext& ctx, const Intention& intent,
                        const Ref& base_root) {
  WideMelder melder(ctx, intent);
  return melder.Run(base_root);
}

}  // namespace hyder
