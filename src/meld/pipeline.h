#ifndef HYDER2_MELD_PIPELINE_H_
#define HYDER2_MELD_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/topk_sketch.h"
#include "meld/group_meld.h"
#include "meld/meld.h"
#include "meld/premeld.h"
#include "meld/state_table.h"
#include "txn/intention.h"

namespace hyder {

/// Owner-tag bit for ephemeral nodes created by the final meld stage. Must
/// differ from the intention's own tag (its seq): final meld's tombstone
/// application restructures the melded tree, and intention nodes themselves
/// remain live in the resolver as snapshot content for later transactions —
/// they must be cloned, never mutated in place.
constexpr uint64_t kFinalTagBit = 1ull << 59;

/// Pipeline stage boundaries instrumented with chaos probes (see
/// server/chaos.h). Values are stable: probe schedules hash them.
enum class PipelineStage {
  kDecode = 0,     ///< Before intention deserialization (server tail loop).
  kPremeld = 1,    ///< Before the premeld stage runs an intention.
  kHandoff = 2,    ///< Premeld -> group/final-meld hand-off boundary.
  kGroupMeld = 3,  ///< Before a group pair combines.
  kFinalMeld = 4,  ///< Before final meld applies an intention.
};

/// Fault probe called at each stage boundary with the intention sequence
/// about to cross it. Return OK to proceed; stall by sleeping before
/// returning OK; return non-OK to inject a failure, which surfaces out of
/// `Poll` and must be treated as a server crash (the pipeline may hold a
/// partially fed intention — discard the server, do not re-Poll it).
///
/// Determinism (§3.4): the probe MUST be a pure function of (stage, seq) —
/// derive decisions from something like Mix64(seed ^ stage ^ seq), never
/// from call counts, wall clock or thread identity, so that a schedule
/// replays identically across runs and engines.
using StageProbe = std::function<Status(PipelineStage, uint64_t seq)>;

/// Configuration of the meld pipeline (Fig. 2).
struct PipelineConfig {
  /// Number of premeld threads `t`; 0 disables premeld. Each intention v is
  /// handled by thread v mod t and melds against state v - t*d - 1 (§3.4).
  int premeld_threads = 0;
  /// Premeld distance `d` (the paper's best setting is 5 threads, d=10).
  int premeld_distance = 10;
  /// Enables group meld: adjacent pairs (odd, even) combine (§4).
  bool group_meld = false;
  /// States retained for premeld and executor snapshots.
  uint64_t state_retention = 4096;
  /// Capacity of each inter-stage hand-off structure in the threaded
  /// pipeline (per-worker input queues and the premeld → final-meld ring).
  /// Bounds in-flight intentions per stage — this is the back-pressure that
  /// ultimately throttles the executors (§5.2). Larger values amortize
  /// wakeups on oversubscribed hosts at the cost of memory and decision
  /// latency. Ignored by the sequential engine.
  size_t stage_queue_capacity = 64;
  /// Ablation only (bench/ablation_graft_fastpath): turn off the meld
  /// operator's subtree-graft fast path.
  bool disable_graft_fastpath = false;
  /// Tree node layout: 2 = binary red-black (the seed baseline), [3, 64] =
  /// wide pages with that many key slots and per-slot meld metadata. The
  /// whole cluster must agree — intentions carry their layout on the wire
  /// and meld refuses mixed trees.
  int tree_fanout = 2;
  /// Chaos probe fired at every stage boundary; null (the default) costs
  /// one branch per boundary. Both engines call it at the same boundaries.
  StageProbe stage_probe;
};

/// Commit/abort decision for one transaction, in log order.
struct MeldDecision {
  uint64_t seq = 0;
  uint64_t txn_id = 0;
  bool committed = false;
  /// Typed abort provenance (common/abort_info.h); `!abort.aborted()` on
  /// commit. The free-form reason string of earlier revisions is
  /// reconstructed lazily via `reason()`.
  AbortInfo abort;

  std::string reason() const { return abort.ToString(); }
};

/// Decision-shaped provenance for admission-control rejections: `Submit`
/// returning Busy never reaches the pipeline, so the open-loop driver
/// stamps rejected arrivals with this to keep the per-cause accounting
/// complete. Lives in the meld layer so every AbortCause enumerator has
/// exactly one producing subsystem (the hyder-check abort-provenance rule).
AbortInfo MakeAdmissionRejectAbort();

/// Deterministic single-threaded driver of the meld pipeline.
///
/// Runs the premeld → group-meld → final-meld stages as ordinary calls in
/// dependency order, which produces *bit-identical states and decisions* to
/// the multithreaded pipeline (that is the paper's determinism requirement,
/// §3.4 — the stages are deterministic functions of (intention, state)
/// pairs chosen by index arithmetic, so thread interleaving cannot matter).
/// Each stage's CPU time and tree-node work is recorded per stage, which is
/// what the evaluation's figures plot and what the calibrated throughput
/// model consumes (see DESIGN.md on the single-core substitution).
class SequentialPipeline {
 public:
  /// `eph_registrar` is invoked for every ephemeral node created by any
  /// stage, feeding the server's registry (may be null in tests that keep
  /// everything reachable).
  SequentialPipeline(const PipelineConfig& config, DatabaseState initial,
                     NodeResolver* resolver,
                     std::function<void(const NodePtr&)> eph_registrar);

  /// Feeds the next intention in log order (seq must be consecutive).
  /// Returns the decisions completed by this step — none while a group
  /// pair's first member is buffered, possibly two when a pair flushes.
  Result<std::vector<MeldDecision>> Process(IntentionPtr intent);

  /// Flushes a buffered unpaired intention (end of stream).
  Result<std::vector<MeldDecision>> Flush();

  /// True while a group pair's first member is buffered undecided. A
  /// checkpoint cannot be cut in this window: the captured state seq
  /// precedes the buffered intention but resume_position lies past its log
  /// blocks, so a bootstrapping server would never meld it and every meld
  /// sequence it assigns afterwards would be shifted — breaking §3.4
  /// determinism.
  bool has_pending_group() const { return pending_group_ != nullptr; }

  StateTable& states() { return states_; }
  const PipelineStats& stats() const { return stats_; }
  PipelineStats* mutable_stats() { return &stats_; }

  /// Contention heatmap: top-K sketch over conflicting user keys, fed by
  /// every abort decision that names one. Owned by the meld thread — read
  /// it from the thread driving the pipeline (the server's metrics provider
  /// does; see the TopKSketch concurrency contract).
  const TopKSketch& contention() const { return contention_; }

  /// Cumulative serialized blocks up to (and including) sequence `seq`;
  /// used to express conflict zones in blocks (Fig. 12).
  uint64_t BlocksUpTo(uint64_t seq) const;

  /// Ephemeral id-space snapshot, in stage order [final, group, premeld...].
  /// Ephemeral version ids are part of the physical state: later intentions'
  /// snapshot versions (ssv) name them, and the meld operator's graft fast
  /// path compares them by value. A checkpoint therefore persists these
  /// counters, and bootstrap restores them, so a restored server continues
  /// minting exactly the ids a full log replay would produce.
  std::vector<uint64_t> EphemeralCounters() const;

  /// Restores counters captured by EphemeralCounters() on a quiescent
  /// pipeline of the same configuration. Extra or missing trailing entries
  /// are tolerated (configuration may differ across incarnations); entries
  /// present on both sides are applied positionally.
  void RestoreEphemeralCounters(const std::vector<uint64_t>& counters);

 private:
  Result<std::vector<MeldDecision>> AfterPremeld(IntentionPtr intent);
  Result<std::vector<MeldDecision>> FinalMeld(IntentionPtr intent);
  void PublishUpTo(uint64_t seq, const Ref& root);
  /// Books one abort decision into the forensic surfaces: per-cause /
  /// per-stage stats, the contention sketch, and the `abort` trace instant.
  void NoteAbort(const MeldDecision& d);

  const PipelineConfig config_;
  StateTable states_;
  NodeResolver* resolver_;
  PipelineStats stats_;
  TopKSketch contention_{64};
  EphemeralAllocator fm_alloc_;
  EphemeralAllocator gm_alloc_;
  std::vector<std::unique_ptr<EphemeralAllocator>> pm_allocs_;
  IntentionPtr pending_group_;  ///< Odd member awaiting its pair.
  std::vector<uint64_t> block_prefix_;  ///< block_prefix_[seq] = cumulative.
  uint64_t published_seq_ = 0;
  /// Backstop against the duplicate-append ambiguity: the assembler filters
  /// retried copies before they reach the pipeline, so a transaction id
  /// arriving twice here means a layering bug that would decide (and could
  /// commit) one transaction twice — fail loudly instead.
  std::unordered_set<uint64_t> fed_txns_;
};

}  // namespace hyder

#endif  // HYDER2_MELD_PIPELINE_H_
