#ifndef HYDER2_MELD_MELD_H_
#define HYDER2_MELD_MELD_H_

#include <string>

#include "common/metrics.h"
#include "common/result.h"
#include "tree/tree_ops.h"
#include "txn/intention.h"

namespace hyder {

/// How the meld operator interprets its inputs.
///
/// The paper's central abstraction (§3.3): meld's output is itself a
/// transaction <S_in, S_out>, so one operator — with the readset-preserving
/// modification — implements final meld, premeld, and (with the §4 special
/// metadata logic) group meld.
enum class MeldMode {
  /// Meld an intention into a database state: the roll-forward OCC step.
  /// Used identically by final meld and premeld; only the inputs differ.
  kState,
  /// Combine intention `i` with a *preceding adjacent intention* acting as
  /// the base tree (§4). Conflict checks are restricted to nodes the base
  /// intention actually wrote, and merged metadata refers to the earlier of
  /// the two snapshots so final meld validates the maximum conflict zone.
  kGroup,
};

/// Result of one meld operator invocation.
struct MeldResult {
  /// True when the transaction experienced a conflict; `abort` explains.
  bool conflict = false;
  /// Typed provenance of the conflict (common/abort_info.h), built
  /// allocation-free at the abort site. The meld operator fills cause /
  /// conflict / key; callers stamp stage and blamed_seq, which only they
  /// know. `abort.ToString()` reconstructs the old free-form reason.
  AbortInfo abort;
  /// Root of the melded output (valid when `!conflict`).
  Ref root;

  std::string reason() const { return abort.ToString(); }
};

/// Everything one meld invocation needs.
struct MeldContext {
  /// Owner tag for nodes this run creates; must be unique per run and
  /// derived deterministically from the intention sequence (see
  /// kPremeldTagBit / kGroupTagBit).
  uint64_t out_tag = 0;
  /// Deterministic ephemeral-id allocator of the executing pipeline thread.
  EphemeralAllocator* alloc = nullptr;
  /// Resolves lazy (logged) and registered (ephemeral) references.
  NodeResolver* resolver = nullptr;
  /// Work counters (nodes visited, ephemerals created, ...).
  MeldWork* work = nullptr;
  MeldMode mode = MeldMode::kState;
  /// Group mode only: the base intention (the earlier of the pair), used to
  /// scope conflict checks to nodes it wrote.
  const Intention* group_base = nullptr;
  /// True when the output is a database state (final meld) rather than a
  /// transaction to be melded again (premeld / group meld). States need no
  /// readset metadata, so validated read-only regions collapse back to the
  /// base subtree instead of being copied — the original meld's behaviour
  /// ([8] line 7, before the §3.3 modification), which keeps ephemeral
  /// creation proportional to *writes*, as the paper's Fig. 24 measures.
  bool output_is_state = false;
  /// Ablation switch: disables the ssv==vn subtree-graft fast path, forcing
  /// full descent everywhere. Decisions are unchanged (the descent performs
  /// the same per-node checks); only the work explodes. Never enable in a
  /// mixed cluster — like every meld parameter it changes ephemeral-id
  /// sequences (§3.4).
  bool disable_graft_fastpath = false;
  /// Where the melder deposits typed provenance when it detects a conflict.
  /// `Meld()` installs its own sink and copies it into MeldResult::abort,
  /// so external callers can leave this null.
  AbortInfo* abort_sink = nullptr;
};

/// The meld operator. Melds `intent` into the tree rooted at `base_root`
/// (a database state in kState mode; the earlier intention's tree in kGroup
/// mode), performing optimistic concurrency control per `intent->isolation`:
///
///  * write-write conflicts — always detected (content versions diverge);
///  * read-write conflicts — under serializable isolation, via the readset
///    annotations carried in the intention;
///  * phantoms — via the subtree-read structural annotations;
///  * delete conflicts — via tombstones, checked against the base and then
///    applied to the melded result.
///
/// On success returns the melded root; nodes created by the run are
/// ephemeral (never logged) with ids from `ctx.alloc` (§2, §3.4). A
/// conflict is reported in MeldResult (not as an error Status); error
/// Statuses indicate real faults (corruption, retired snapshots).
Result<MeldResult> Meld(const MeldContext& ctx, const Intention& intent,
                        const Ref& base_root);

/// The deterministic premeld input index (Algorithm 1, line 1): with `t`
/// premeld threads and premeld distance `d`, intention `v` premelds against
/// the state produced by intention v - t*d - 1 (0 = initial state).
inline uint64_t PremeldTargetSeq(uint64_t v, int t, int d) {
  const uint64_t back = uint64_t(t) * uint64_t(d) + 1;
  return v > back ? v - back : 0;
}

/// The premeld thread that owns intention `v` (Algorithm 1: id modulo t).
inline int PremeldThreadFor(uint64_t v, int t) {
  return static_cast<int>(v % uint64_t(t));
}

}  // namespace hyder

#endif  // HYDER2_MELD_MELD_H_
