#include "meld/meld.h"

#include <algorithm>
#include <vector>

#include "meld/wide_meld.h"

namespace hyder {

namespace {

/// Implementation state for one meld invocation.
class Melder {
 public:
  Melder(const MeldContext& ctx, const Intention& intent)
      : ctx_(ctx), intent_(intent) {}

  Result<Ref> Run(const Ref& base_root) {
    Ref melded = base_root;
    if (!intent_.root.IsNull()) {
      HYDER_ASSIGN_OR_RETURN(melded, Rec(intent_.root, base_root));
    }
    HYDER_RETURN_IF_ERROR(ApplyTombstones(base_root, &melded));
    return melded;
  }

 private:
  bool Inside(const Node* n) const {
    // Nodes created by this very run (split copies) are part of the
    // intention's view too.
    return n != nullptr &&
           (n->owner() == ctx_.out_tag || intent_.Inside(*n));
  }

  /// Wire-v3 intentions arrive with lazy intra-member edges (flat_view.h):
  /// materialize them canonically through the intention's flat views before
  /// the Inside test, so the walk sees exactly the tree a v2 decode would
  /// have built — and only the nodes the walk actually reaches get built.
  /// Edges into anything outside the member set stay lazy; Inside() treats
  /// them as "base wins", matching v2 semantics.
  void NormalizeIntentEdge(Ref* e) const {
    if (intent_.flats.empty() || e->node || !e->vn.IsLogged()) return;
    if (NodePtr n = intent_.ResolveFlat(e->vn)) e->node = std::move(n);
  }
  bool BaseInside(const Node* n) const {
    return ctx_.group_base != nullptr && n != nullptr &&
           ctx_.group_base->Inside(*n);
  }
  bool Serializable() const {
    return intent_.isolation == IsolationLevel::kSerializable;
  }
  void Visit() const {
    if (ctx_.work != nullptr) ctx_.work->nodes_visited++;
  }

  /// Deposits typed provenance in the context's sink and returns the abort
  /// Status. Allocation-free: the provenance is a POD write and `msg` must
  /// be a short static literal (fits the Status small-string buffer); the
  /// human-readable reason is reconstructed lazily by AbortInfo::ToString.
  Status Abort(AbortCause cause, Key key, const char* msg) const {
    if (ctx_.abort_sink != nullptr) {
      AbortInfo& a = *ctx_.abort_sink;
      a.cause = cause;
      a.conflict = cause;
      a.key_kind = AbortKeyKind::kUserKey;
      a.key = key;
      a.slot = -1;
    }
    return Status::Aborted(msg);
  }

  Result<NodePtr> Materialize(const Ref& e) const {
    if (e.node) return e.node;
    if (e.vn.IsNull()) return NodePtr();
    if (ctx_.resolver == nullptr) {
      return Status::Internal("meld: lazy edge with no resolver");
    }
    return ctx_.resolver->Resolve(e.vn);
  }

  NodePtr NewEphemeral(Key key, std::string_view payload) const {
    NodePtr e = MakeNode(key, payload);
    e->set_owner(ctx_.out_tag);
    ctx_.alloc->Assign(e);
    if (ctx_.work != nullptr) ctx_.work->ephemeral_created++;
    return e;
  }

  /// OCC validation of one intention node against the aligned base node
  /// (Appendix A). In group mode only the base intention's own writes
  /// constitute the conflict zone (§4); apparent divergence against the
  /// base's *snapshot* is snapshot skew between the pair, left for final
  /// meld to validate via the merged metadata.
  Status CheckConflict(const Node* i, const Node* l) const {
    if (ctx_.work != nullptr) ctx_.work->conflict_checks++;
    const bool eligible =
        ctx_.mode == MeldMode::kState || (BaseInside(l) && l->altered());
    const bool content_changed = l->cv() != i->base_cv();
    if (eligible && content_changed) {
      if (i->altered()) {
        return Abort(AbortCause::kAbortWriteWrite, i->key(), "write-write");
      }
      if (Serializable() && i->read_dependent()) {
        return Abort(AbortCause::kAbortReadWrite, i->key(), "read-write");
      }
    }
    if (Serializable() && i->subtree_read()) {
      // Structural dependency: the subtree the transaction scanned must be
      // exactly the version it read. Reaching this check means the versions
      // already diverged (the graft fast-path did not fire).
      if (ctx_.mode == MeldMode::kState) {
        if (i->ssv() != l->vn()) {
          return Abort(AbortCause::kAbortPhantom, i->key(), "phantom");
        }
      } else if (BaseInside(l)) {
        return Abort(AbortCause::kAbortPhantom, i->key(), "group phantom");
      }
    }
    return Status::OK();
  }

  /// True when `melded` is the same edge the base node already holds.
  static bool SameEdge(const Ref& melded, const Ref& base) {
    if (melded.node && base.node) return melded.node.get() == base.node.get();
    if (!melded.vn.IsNull() || !base.vn.IsNull()) {
      return melded.vn == base.vn;
    }
    return melded.IsNull() && base.IsNull();
  }

  /// The validated node contributes nothing the base node does not already
  /// have: no new payload, no readset metadata that must survive into a
  /// meld output (states never need it; transaction outputs only for
  /// annotated nodes), and no structural change below. Collapsing to the
  /// base node keeps ephemeral creation proportional to writes ([8]'s
  /// original read-only-subtree behaviour).
  bool CanCollapseToBase(const Node* i, const Ref& left, const Ref& right,
                         const NodePtr& l) const {
    if (i->altered()) return false;
    if (!ctx_.output_is_state && i->flags() != 0) return false;
    return SameEdge(left, l->left().GetLocal()) &&
           SameEdge(right, l->right().GetLocal());
  }

  /// Builds the ephemeral merged node for aligned (i, l) with already-melded
  /// children.
  Result<Ref> Merge(const NodePtr& i, const NodePtr& l, Ref left, Ref right) {
    HYDER_RETURN_IF_ERROR(CheckConflict(i.get(), l.get()));
    if (CanCollapseToBase(i.get(), left, right, l)) {
      return Ref::To(l);
    }
    const bool i_altered = i->altered();
    NodePtr e = NewEphemeral(i->key(),
                             i_altered ? i->payload() : l->payload());
    e->set_color(l->color());
    if (ctx_.mode == MeldMode::kState) {
      e->set_ssv(l->vn());
      e->set_base_cv(l->cv());
      e->set_cv(i_altered ? i->cv() : l->cv());
      e->set_flags(i->flags());
    } else {
      // Group mode (§4): the merged node's conflict metadata must make the
      // final meld validate the *maximum* of the two members' conflict
      // zones, i.e. refer to the earlier snapshot.
      const bool l_is_base_write = BaseInside(l.get()) && l->altered();
      e->set_cv(i_altered ? i->cv() : l->cv());
      uint8_t flags = i->flags();
      if (i_altered || l_is_base_write) {
        flags |= kFlagAltered | kFlagSubtreeHasWrites;
      }
      if (BaseInside(l.get())) {
        flags |= l->flags() &
                 (kFlagRead | kFlagSubtreeRead | kFlagSubtreeHasWrites);
      }
      e->set_flags(flags);
      if (intent_.snapshot_seq <= ctx_.group_base->snapshot_seq) {
        e->set_ssv(i->ssv());
        e->set_base_cv(i->base_cv());
      } else if (BaseInside(l.get())) {
        e->set_ssv(l->ssv());
        e->set_base_cv(l->base_cv());
      } else {
        // l is a node of the base's snapshot itself.
        e->set_ssv(l->vn());
        e->set_base_cv(l->cv());
      }
    }
    e->left().Reset(std::move(left));
    e->right().Reset(std::move(right));
    return Ref::To(e);
  }

  /// The base tree has no content in this interval but the intention does.
  /// In state mode that means every snapshot-derived key here was deleted by
  /// a committed concurrent transaction: validate and keep only this
  /// transaction's fresh inserts. In group mode the apparent absence may be
  /// snapshot skew, so the intention subtree passes through for final meld
  /// to validate.
  Result<Ref> IntoMissing(const Ref& i_edge) {
    if (ctx_.mode == MeldMode::kGroup) return i_edge;
    std::vector<NodePtr> kept;
    HYDER_RETURN_IF_ERROR(CollectSurvivors(i_edge, &kept));
    if (kept.empty()) return Ref::Null();
    return BuildBalanced(kept, 0, kept.size(), Height(kept.size()));
  }

  Status CollectSurvivors(Ref edge, std::vector<NodePtr>* kept) {
    NormalizeIntentEdge(&edge);
    const Node* n = edge.node.get();
    if (!Inside(n)) return Status::OK();  // Outside/lazy: deleted region.
    Visit();
    HYDER_RETURN_IF_ERROR(CollectSurvivors(n->left().GetLocal(), kept));
    // Snapshot-derived nodes have provenance; fresh inserts have neither
    // field. (Split copies clear ssv but keep base_cv, so test both.)
    if (!n->ssv().IsNull() || !n->base_cv().IsNull()) {
      // The key existed in the snapshot but is gone from the base state:
      // the subtree this intention grafted onto was concurrently deleted.
      if (n->altered()) {
        return Abort(AbortCause::kAbortGraft, n->key(), "write vs delete");
      }
      if (Serializable() && n->read_dependent()) {
        return Abort(AbortCause::kAbortGraft, n->key(), "read vs delete");
      }
      if (Serializable() && n->subtree_read()) {
        return Abort(AbortCause::kAbortPhantom, n->key(), "scan vs delete");
      }
      // Path copy only: the concurrent delete wins; drop it.
    } else if (n->altered()) {
      kept->push_back(edge.node);  // Fresh insert: keep.
    }
    return CollectSurvivors(n->right().GetLocal(), kept);
  }

  static int Height(size_t n) {
    int h = 0;
    while (n > 0) {
      ++h;
      n >>= 1;
    }
    return h;
  }

  /// Deterministically rebuilds kept inserts (already key-sorted) into a
  /// valid red-black subtree: nodes at the deepest level are red.
  Ref BuildBalanced(const std::vector<NodePtr>& items, size_t lo, size_t hi,
                    int black_levels) {
    if (lo >= hi) return Ref::Null();
    const size_t mid = lo + (hi - lo) / 2;
    const Node* src = items[mid].get();
    NodePtr e = NewEphemeral(src->key(), src->payload());
    e->set_flags(src->flags());
    e->set_cv(src->cv());
    // ssv/base_cv stay null: this is an insert.
    e->set_color(black_levels > 1 ? Color::kBlack : Color::kRed);
    e->left().Reset(BuildBalanced(items, lo, mid, black_levels - 1));
    e->right().Reset(BuildBalanced(items, mid + 1, hi, black_levels - 1));
    return Ref::To(e);
  }

  struct SplitOut {
    Ref less;
    NodePtr eq;
    Ref greater;
  };

  /// Splits the in-intention subtree at `edge` around key `k`. Outside
  /// references contribute nothing: their meld value is "the base wins",
  /// which is what an empty piece produces as well.
  Result<SplitOut> Split(Ref edge, Key k) {
    SplitOut out;
    NormalizeIntentEdge(&edge);
    const Node* n = edge.node.get();
    if (!Inside(n)) return out;
    Visit();
    if (ctx_.work != nullptr) ctx_.work->splits++;
    if (n->key() == k) {
      out.less = n->left().GetLocal();
      out.eq = edge.node;
      out.greater = n->right().GetLocal();
      return out;
    }
    if (k < n->key()) {
      HYDER_ASSIGN_OR_RETURN(SplitOut inner, Split(n->left().GetLocal(), k));
      NodePtr e = CopyForSplit(edge.node);
      e->left().Reset(std::move(inner.greater));
      out.less = std::move(inner.less);
      out.eq = std::move(inner.eq);
      out.greater = Ref::To(e);
    } else {
      HYDER_ASSIGN_OR_RETURN(SplitOut inner, Split(n->right().GetLocal(), k));
      NodePtr e = CopyForSplit(edge.node);
      e->right().Reset(std::move(inner.less));
      out.less = Ref::To(e);
      out.eq = std::move(inner.eq);
      out.greater = std::move(inner.greater);
    }
    return out;
  }

  /// Ephemeral copy for the split path. Flags and content provenance
  /// survive so conflict checks still fire for the relocated node, but the
  /// *structure* version is cleared: the copy's subtree is incomplete (the
  /// split replaces outside-reference edges with null, relying on the base
  /// side to supply that content during the merge), so the graft fast-path
  /// must never return it wholesale.
  NodePtr CopyForSplit(const NodePtr& n) const {
    NodePtr e = NewEphemeral(n->key(), n->payload());
    e->set_ssv(VersionId());
    e->set_base_cv(n->base_cv());
    e->set_cv(n->cv());
    e->set_flags(n->flags());
    e->set_color(n->color());
    e->left().Reset(n->left().GetLocal());
    e->right().Reset(n->right().GetLocal());
    return e;
  }

  /// The merge recursion. `i_edge` and `l_edge` span the same key interval.
  Result<Ref> Rec(Ref i_edge, const Ref& l_edge) {
    NormalizeIntentEdge(&i_edge);
    const Node* i = i_edge.node.get();
    if (!Inside(i)) {
      // Null, lazy, or a snapshot pointer: the intention asserts nothing in
      // this interval, so the base state's content stands (committed
      // concurrent updates included).
      return l_edge;
    }
    Visit();
    if (l_edge.IsNull()) return IntoMissing(i_edge);
    HYDER_ASSIGN_OR_RETURN(NodePtr l, Materialize(l_edge));

    if (!ctx_.disable_graft_fastpath && !i->ssv().IsNull() &&
        i->ssv() == l->vn()) {
      // Fast path: the base still holds the exact version this subtree was
      // derived from — nothing concurrent happened anywhere under it.
      if (ctx_.work != nullptr) ctx_.work->grafts++;
      if (ctx_.output_is_state && !i->subtree_has_writes()) {
        // Read-only matching subtree into a *state*: return the base side —
        // [8]'s original line 7. No ephemeral structure enters the state
        // for pure reads.
        return Ref::To(l);
      }
      // Otherwise graft the intention subtree; returning *i* (not l) keeps
      // the writes and, for meld outputs that feed another meld, the
      // readset metadata (§3.3's one-line modification).
      return i_edge;
    }

    if (i->key() == l->key()) {
      HYDER_ASSIGN_OR_RETURN(Ref left,
                             Rec(i->left().GetLocal(), l->left().GetLocal()));
      HYDER_ASSIGN_OR_RETURN(
          Ref right, Rec(i->right().GetLocal(), l->right().GetLocal()));
      return Merge(i_edge.node, l, std::move(left), std::move(right));
    }

    // Keys diverged: concurrent rebalancing moved the subtree roots apart.
    // Split the intention content by the base key and meld piecewise.
    HYDER_ASSIGN_OR_RETURN(SplitOut sp, Split(i_edge, l->key()));
    HYDER_ASSIGN_OR_RETURN(Ref left, Rec(sp.less, l->left().GetLocal()));
    HYDER_ASSIGN_OR_RETURN(Ref right,
                           Rec(sp.greater, l->right().GetLocal()));
    if (sp.eq) {
      return Merge(sp.eq, l, std::move(left), std::move(right));
    }
    // No intention node carries this key: the base node passes through
    // (with rebuilt children), or verbatim when nothing below it changed.
    if (SameEdge(left, l->left().GetLocal()) &&
        SameEdge(right, l->right().GetLocal())) {
      return Ref::To(l);
    }
    NodePtr e = NewEphemeral(l->key(), l->payload());
    e->set_ssv(ctx_.mode == MeldMode::kState || !BaseInside(l.get())
                   ? l->vn()
                   : l->ssv());
    e->set_base_cv(ctx_.mode == MeldMode::kState || !BaseInside(l.get())
                       ? l->cv()
                       : l->base_cv());
    e->set_cv(l->cv());
    e->set_color(l->color());
    if (ctx_.mode == MeldMode::kGroup && BaseInside(l.get())) {
      e->set_flags(l->flags());
    }
    e->left().Reset(std::move(left));
    e->right().Reset(std::move(right));
    return Ref::To(e);
  }

  /// Validates tombstones against the base tree, then applies the deletions
  /// to the melded result (idempotently — the key may already be absent
  /// when the structural merge grafted a subtree that lacks it).
  Status ApplyTombstones(const Ref& base_root, Ref* melded) {
    if (intent_.tombstones.empty()) return Status::OK();
    for (const Tombstone& t : intent_.tombstones) {
      // Locate the key in the base tree.
      HYDER_ASSIGN_OR_RETURN(NodePtr cur, Materialize(base_root));
      while (cur && cur->key() != t.key) {
        Visit();
        HYDER_ASSIGN_OR_RETURN(cur,
                               cur->child(t.key > cur->key()).Get(
                                   ctx_.resolver));
      }
      if (cur) {
        const bool eligible = ctx_.mode == MeldMode::kState ||
                              (BaseInside(cur.get()) && cur->altered());
        if (eligible && cur->cv() != t.base_cv) {
          return Abort(AbortCause::kAbortWriteWrite, t.key,
                       "delete write-write");
        }
      } else {
        if (ctx_.mode == MeldMode::kState && !t.base_cv.IsNull()) {
          return Abort(AbortCause::kAbortWriteWrite, t.key, "delete-delete");
        }
      }
      // Apply to the melded tree.
      TreeOpStats delete_stats;
      CowContext cc;
      cc.owner = ctx_.out_tag;
      cc.resolver = ctx_.resolver;
      cc.vn_alloc = ctx_.alloc;
      cc.preserve_owners = &intent_.inside;
      cc.stats = &delete_stats;
      HYDER_ASSIGN_OR_RETURN(*melded, TreeRemove(cc, *melded, t.key,
                                                 nullptr, nullptr, nullptr));
      if (ctx_.work != nullptr) {
        ctx_.work->nodes_visited += delete_stats.nodes_visited;
        ctx_.work->ephemeral_created += delete_stats.nodes_created;
      }
    }
    return Status::OK();
  }

  const MeldContext& ctx_;
  const Intention& intent_;
};

/// Layout dispatch: a wide intention or base tree melds through the wide
/// operator (wide_meld.cc); layout mismatches between the two surface as
/// Internal errors inside the melders. A delete-only intention against a
/// lazy base resolves the base root once (memoized by the resolver) to
/// learn the layout.
Result<bool> MeldInputIsWide(const MeldContext& ctx, const Intention& intent,
                             const Ref& base_root) {
  if (intent.root.node) return intent.root.node->is_wide();
  if (base_root.node) return base_root.node->is_wide();
  if (!base_root.vn.IsNull() && ctx.resolver != nullptr) {
    HYDER_ASSIGN_OR_RETURN(NodePtr b, ctx.resolver->Resolve(base_root.vn));
    return b && b->is_wide();
  }
  return false;
}

}  // namespace

Result<MeldResult> Meld(const MeldContext& ctx, const Intention& intent,
                        const Ref& base_root) {
  if (ctx.alloc == nullptr) {
    return Status::InvalidArgument("meld requires an ephemeral allocator");
  }
  if (ctx.mode == MeldMode::kGroup && ctx.group_base == nullptr) {
    return Status::InvalidArgument("group meld requires the base intention");
  }
  HYDER_ASSIGN_OR_RETURN(const bool wide, MeldInputIsWide(ctx, intent,
                                                          base_root));
  // Install a local provenance sink (unless the caller brought one) so the
  // melders deposit typed AbortInfo instead of building reason strings.
  AbortInfo abort;
  MeldContext local = ctx;
  if (local.abort_sink == nullptr) local.abort_sink = &abort;
  Melder melder(local, intent);
  Result<Ref> melded =
      wide ? RunWideMeld(local, intent, base_root) : melder.Run(base_root);
  MeldResult result;
  if (melded.ok()) {
    result.root = std::move(*melded);
    return result;
  }
  if (melded.status().IsAborted()) {
    result.conflict = true;
    result.abort = *local.abort_sink;
    if (!result.abort.aborted()) {
      // Defensive: an abort path that forgot its provenance still reports a
      // typed (if anonymous) conflict. hyder-check pins that none exist.
      result.abort.cause = AbortCause::kAbortWriteWrite;
      result.abort.conflict = AbortCause::kAbortWriteWrite;
    }
    return result;
  }
  return melded.status();  // Real fault.
}

}  // namespace hyder
