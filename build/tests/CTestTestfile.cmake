# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tree_test "/root/repo/build/tests/tree_test")
set_tests_properties(tree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(log_test "/root/repo/build/tests/log_test")
set_tests_properties(log_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(txn_test "/root/repo/build/tests/txn_test")
set_tests_properties(txn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(meld_test "/root/repo/build/tests/meld_test")
set_tests_properties(meld_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(server_test "/root/repo/build/tests/server_test")
set_tests_properties(server_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(threaded_pipeline_test "/root/repo/build/tests/threaded_pipeline_test")
set_tests_properties(threaded_pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline_test "/root/repo/build/tests/pipeline_test")
set_tests_properties(pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(checkpoint_test "/root/repo/build/tests/checkpoint_test")
set_tests_properties(checkpoint_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(btree_sizer_test "/root/repo/build/tests/btree_sizer_test")
set_tests_properties(btree_sizer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stress_test "/root/repo/build/tests/stress_test")
set_tests_properties(stress_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isolation_test "/root/repo/build/tests/isolation_test")
set_tests_properties(isolation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(file_log_test "/root/repo/build/tests/file_log_test")
set_tests_properties(file_log_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;hyder_test;/root/repo/tests/CMakeLists.txt;0;")
