# Empty dependencies file for file_log_test.
# This may be replaced when dependencies are built.
