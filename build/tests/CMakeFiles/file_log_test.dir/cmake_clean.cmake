file(REMOVE_RECURSE
  "CMakeFiles/file_log_test.dir/file_log_test.cc.o"
  "CMakeFiles/file_log_test.dir/file_log_test.cc.o.d"
  "file_log_test"
  "file_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
