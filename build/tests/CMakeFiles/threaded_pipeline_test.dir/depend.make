# Empty dependencies file for threaded_pipeline_test.
# This may be replaced when dependencies are built.
