file(REMOVE_RECURSE
  "CMakeFiles/threaded_pipeline_test.dir/threaded_pipeline_test.cc.o"
  "CMakeFiles/threaded_pipeline_test.dir/threaded_pipeline_test.cc.o.d"
  "threaded_pipeline_test"
  "threaded_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
