file(REMOVE_RECURSE
  "CMakeFiles/btree_sizer_test.dir/btree_sizer_test.cc.o"
  "CMakeFiles/btree_sizer_test.dir/btree_sizer_test.cc.o.d"
  "btree_sizer_test"
  "btree_sizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_sizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
