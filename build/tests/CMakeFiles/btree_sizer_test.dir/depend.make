# Empty dependencies file for btree_sizer_test.
# This may be replaced when dependencies are built.
