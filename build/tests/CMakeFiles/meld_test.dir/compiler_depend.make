# Empty compiler generated dependencies file for meld_test.
# This may be replaced when dependencies are built.
