file(REMOVE_RECURSE
  "CMakeFiles/meld_test.dir/meld_test.cc.o"
  "CMakeFiles/meld_test.dir/meld_test.cc.o.d"
  "meld_test"
  "meld_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
