file(REMOVE_RECURSE
  "libhyder_common.a"
)
