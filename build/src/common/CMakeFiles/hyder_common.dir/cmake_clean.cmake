file(REMOVE_RECURSE
  "CMakeFiles/hyder_common.dir/histogram.cc.o"
  "CMakeFiles/hyder_common.dir/histogram.cc.o.d"
  "CMakeFiles/hyder_common.dir/metrics.cc.o"
  "CMakeFiles/hyder_common.dir/metrics.cc.o.d"
  "CMakeFiles/hyder_common.dir/random.cc.o"
  "CMakeFiles/hyder_common.dir/random.cc.o.d"
  "CMakeFiles/hyder_common.dir/status.cc.o"
  "CMakeFiles/hyder_common.dir/status.cc.o.d"
  "libhyder_common.a"
  "libhyder_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
