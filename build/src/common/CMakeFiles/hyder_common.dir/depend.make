# Empty dependencies file for hyder_common.
# This may be replaced when dependencies are built.
