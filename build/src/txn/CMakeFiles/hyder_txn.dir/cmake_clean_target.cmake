file(REMOVE_RECURSE
  "libhyder_txn.a"
)
