# Empty dependencies file for hyder_txn.
# This may be replaced when dependencies are built.
