file(REMOVE_RECURSE
  "CMakeFiles/hyder_txn.dir/codec.cc.o"
  "CMakeFiles/hyder_txn.dir/codec.cc.o.d"
  "CMakeFiles/hyder_txn.dir/intention_builder.cc.o"
  "CMakeFiles/hyder_txn.dir/intention_builder.cc.o.d"
  "libhyder_txn.a"
  "libhyder_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
