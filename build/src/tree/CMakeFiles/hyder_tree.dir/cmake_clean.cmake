file(REMOVE_RECURSE
  "CMakeFiles/hyder_tree.dir/btree_sizer.cc.o"
  "CMakeFiles/hyder_tree.dir/btree_sizer.cc.o.d"
  "CMakeFiles/hyder_tree.dir/node.cc.o"
  "CMakeFiles/hyder_tree.dir/node.cc.o.d"
  "CMakeFiles/hyder_tree.dir/tree_ops.cc.o"
  "CMakeFiles/hyder_tree.dir/tree_ops.cc.o.d"
  "CMakeFiles/hyder_tree.dir/validate.cc.o"
  "CMakeFiles/hyder_tree.dir/validate.cc.o.d"
  "CMakeFiles/hyder_tree.dir/version_id.cc.o"
  "CMakeFiles/hyder_tree.dir/version_id.cc.o.d"
  "libhyder_tree.a"
  "libhyder_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
