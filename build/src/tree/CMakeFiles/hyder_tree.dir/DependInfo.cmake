
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/btree_sizer.cc" "src/tree/CMakeFiles/hyder_tree.dir/btree_sizer.cc.o" "gcc" "src/tree/CMakeFiles/hyder_tree.dir/btree_sizer.cc.o.d"
  "/root/repo/src/tree/node.cc" "src/tree/CMakeFiles/hyder_tree.dir/node.cc.o" "gcc" "src/tree/CMakeFiles/hyder_tree.dir/node.cc.o.d"
  "/root/repo/src/tree/tree_ops.cc" "src/tree/CMakeFiles/hyder_tree.dir/tree_ops.cc.o" "gcc" "src/tree/CMakeFiles/hyder_tree.dir/tree_ops.cc.o.d"
  "/root/repo/src/tree/validate.cc" "src/tree/CMakeFiles/hyder_tree.dir/validate.cc.o" "gcc" "src/tree/CMakeFiles/hyder_tree.dir/validate.cc.o.d"
  "/root/repo/src/tree/version_id.cc" "src/tree/CMakeFiles/hyder_tree.dir/version_id.cc.o" "gcc" "src/tree/CMakeFiles/hyder_tree.dir/version_id.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hyder_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
