# Empty compiler generated dependencies file for hyder_tree.
# This may be replaced when dependencies are built.
