file(REMOVE_RECURSE
  "libhyder_tree.a"
)
