# Empty dependencies file for hyder_tree.
# This may be replaced when dependencies are built.
