file(REMOVE_RECURSE
  "CMakeFiles/hyder_server.dir/checkpoint.cc.o"
  "CMakeFiles/hyder_server.dir/checkpoint.cc.o.d"
  "CMakeFiles/hyder_server.dir/cluster.cc.o"
  "CMakeFiles/hyder_server.dir/cluster.cc.o.d"
  "CMakeFiles/hyder_server.dir/driver.cc.o"
  "CMakeFiles/hyder_server.dir/driver.cc.o.d"
  "CMakeFiles/hyder_server.dir/resolver.cc.o"
  "CMakeFiles/hyder_server.dir/resolver.cc.o.d"
  "CMakeFiles/hyder_server.dir/server.cc.o"
  "CMakeFiles/hyder_server.dir/server.cc.o.d"
  "libhyder_server.a"
  "libhyder_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
