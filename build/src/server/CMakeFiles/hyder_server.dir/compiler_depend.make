# Empty compiler generated dependencies file for hyder_server.
# This may be replaced when dependencies are built.
