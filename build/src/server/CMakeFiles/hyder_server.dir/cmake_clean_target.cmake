file(REMOVE_RECURSE
  "libhyder_server.a"
)
