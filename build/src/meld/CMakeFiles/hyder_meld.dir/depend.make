# Empty dependencies file for hyder_meld.
# This may be replaced when dependencies are built.
