file(REMOVE_RECURSE
  "libhyder_meld.a"
)
