file(REMOVE_RECURSE
  "CMakeFiles/hyder_meld.dir/group_meld.cc.o"
  "CMakeFiles/hyder_meld.dir/group_meld.cc.o.d"
  "CMakeFiles/hyder_meld.dir/meld.cc.o"
  "CMakeFiles/hyder_meld.dir/meld.cc.o.d"
  "CMakeFiles/hyder_meld.dir/pipeline.cc.o"
  "CMakeFiles/hyder_meld.dir/pipeline.cc.o.d"
  "CMakeFiles/hyder_meld.dir/premeld.cc.o"
  "CMakeFiles/hyder_meld.dir/premeld.cc.o.d"
  "CMakeFiles/hyder_meld.dir/state_table.cc.o"
  "CMakeFiles/hyder_meld.dir/state_table.cc.o.d"
  "CMakeFiles/hyder_meld.dir/threaded_pipeline.cc.o"
  "CMakeFiles/hyder_meld.dir/threaded_pipeline.cc.o.d"
  "libhyder_meld.a"
  "libhyder_meld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_meld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
