
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meld/group_meld.cc" "src/meld/CMakeFiles/hyder_meld.dir/group_meld.cc.o" "gcc" "src/meld/CMakeFiles/hyder_meld.dir/group_meld.cc.o.d"
  "/root/repo/src/meld/meld.cc" "src/meld/CMakeFiles/hyder_meld.dir/meld.cc.o" "gcc" "src/meld/CMakeFiles/hyder_meld.dir/meld.cc.o.d"
  "/root/repo/src/meld/pipeline.cc" "src/meld/CMakeFiles/hyder_meld.dir/pipeline.cc.o" "gcc" "src/meld/CMakeFiles/hyder_meld.dir/pipeline.cc.o.d"
  "/root/repo/src/meld/premeld.cc" "src/meld/CMakeFiles/hyder_meld.dir/premeld.cc.o" "gcc" "src/meld/CMakeFiles/hyder_meld.dir/premeld.cc.o.d"
  "/root/repo/src/meld/state_table.cc" "src/meld/CMakeFiles/hyder_meld.dir/state_table.cc.o" "gcc" "src/meld/CMakeFiles/hyder_meld.dir/state_table.cc.o.d"
  "/root/repo/src/meld/threaded_pipeline.cc" "src/meld/CMakeFiles/hyder_meld.dir/threaded_pipeline.cc.o" "gcc" "src/meld/CMakeFiles/hyder_meld.dir/threaded_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/hyder_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/hyder_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyder_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
