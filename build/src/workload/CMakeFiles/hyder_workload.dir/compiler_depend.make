# Empty compiler generated dependencies file for hyder_workload.
# This may be replaced when dependencies are built.
