file(REMOVE_RECURSE
  "CMakeFiles/hyder_workload.dir/workload.cc.o"
  "CMakeFiles/hyder_workload.dir/workload.cc.o.d"
  "libhyder_workload.a"
  "libhyder_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
