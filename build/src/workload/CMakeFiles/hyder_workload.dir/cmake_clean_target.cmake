file(REMOVE_RECURSE
  "libhyder_workload.a"
)
