file(REMOVE_RECURSE
  "CMakeFiles/hyder_baseline.dir/tango.cc.o"
  "CMakeFiles/hyder_baseline.dir/tango.cc.o.d"
  "libhyder_baseline.a"
  "libhyder_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
