file(REMOVE_RECURSE
  "libhyder_baseline.a"
)
