# Empty compiler generated dependencies file for hyder_baseline.
# This may be replaced when dependencies are built.
