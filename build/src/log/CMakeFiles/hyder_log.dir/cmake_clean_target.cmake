file(REMOVE_RECURSE
  "libhyder_log.a"
)
