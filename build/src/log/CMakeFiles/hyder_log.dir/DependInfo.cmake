
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/corfu_sim.cc" "src/log/CMakeFiles/hyder_log.dir/corfu_sim.cc.o" "gcc" "src/log/CMakeFiles/hyder_log.dir/corfu_sim.cc.o.d"
  "/root/repo/src/log/file_log.cc" "src/log/CMakeFiles/hyder_log.dir/file_log.cc.o" "gcc" "src/log/CMakeFiles/hyder_log.dir/file_log.cc.o.d"
  "/root/repo/src/log/striped_log.cc" "src/log/CMakeFiles/hyder_log.dir/striped_log.cc.o" "gcc" "src/log/CMakeFiles/hyder_log.dir/striped_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hyder_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
