# Empty compiler generated dependencies file for hyder_log.
# This may be replaced when dependencies are built.
