file(REMOVE_RECURSE
  "CMakeFiles/hyder_log.dir/corfu_sim.cc.o"
  "CMakeFiles/hyder_log.dir/corfu_sim.cc.o.d"
  "CMakeFiles/hyder_log.dir/file_log.cc.o"
  "CMakeFiles/hyder_log.dir/file_log.cc.o.d"
  "CMakeFiles/hyder_log.dir/striped_log.cc.o"
  "CMakeFiles/hyder_log.dir/striped_log.cc.o.d"
  "libhyder_log.a"
  "libhyder_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
