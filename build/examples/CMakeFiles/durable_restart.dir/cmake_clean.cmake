file(REMOVE_RECURSE
  "CMakeFiles/durable_restart.dir/durable_restart.cpp.o"
  "CMakeFiles/durable_restart.dir/durable_restart.cpp.o.d"
  "durable_restart"
  "durable_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
