# Empty compiler generated dependencies file for durable_restart.
# This may be replaced when dependencies are built.
