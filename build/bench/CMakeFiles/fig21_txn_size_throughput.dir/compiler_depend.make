# Empty compiler generated dependencies file for fig21_txn_size_throughput.
# This may be replaced when dependencies are built.
