file(REMOVE_RECURSE
  "CMakeFiles/fig21_txn_size_throughput.dir/fig21_txn_size_throughput.cc.o"
  "CMakeFiles/fig21_txn_size_throughput.dir/fig21_txn_size_throughput.cc.o.d"
  "fig21_txn_size_throughput"
  "fig21_txn_size_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_txn_size_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
