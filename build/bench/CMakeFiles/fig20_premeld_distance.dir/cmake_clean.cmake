file(REMOVE_RECURSE
  "CMakeFiles/fig20_premeld_distance.dir/fig20_premeld_distance.cc.o"
  "CMakeFiles/fig20_premeld_distance.dir/fig20_premeld_distance.cc.o.d"
  "fig20_premeld_distance"
  "fig20_premeld_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_premeld_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
