# Empty compiler generated dependencies file for fig20_premeld_distance.
# This may be replaced when dependencies are built.
