# Empty dependencies file for fig15_sr_vs_si.
# This may be replaced when dependencies are built.
