file(REMOVE_RECURSE
  "CMakeFiles/fig15_sr_vs_si.dir/fig15_sr_vs_si.cc.o"
  "CMakeFiles/fig15_sr_vs_si.dir/fig15_sr_vs_si.cc.o.d"
  "fig15_sr_vs_si"
  "fig15_sr_vs_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sr_vs_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
