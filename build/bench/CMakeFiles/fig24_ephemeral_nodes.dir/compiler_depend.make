# Empty compiler generated dependencies file for fig24_ephemeral_nodes.
# This may be replaced when dependencies are built.
