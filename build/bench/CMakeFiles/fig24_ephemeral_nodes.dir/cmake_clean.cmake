file(REMOVE_RECURSE
  "CMakeFiles/fig24_ephemeral_nodes.dir/fig24_ephemeral_nodes.cc.o"
  "CMakeFiles/fig24_ephemeral_nodes.dir/fig24_ephemeral_nodes.cc.o.d"
  "fig24_ephemeral_nodes"
  "fig24_ephemeral_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_ephemeral_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
