# Empty compiler generated dependencies file for ablation_index_structure.
# This may be replaced when dependencies are built.
