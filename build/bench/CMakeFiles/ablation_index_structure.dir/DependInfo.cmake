
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_index_structure.cc" "bench/CMakeFiles/ablation_index_structure.dir/ablation_index_structure.cc.o" "gcc" "bench/CMakeFiles/ablation_index_structure.dir/ablation_index_structure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hyder_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hyder_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/hyder_server.dir/DependInfo.cmake"
  "/root/repo/build/src/meld/CMakeFiles/hyder_meld.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/hyder_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hyder_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/hyder_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/hyder_log.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyder_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
