file(REMOVE_RECURSE
  "CMakeFiles/ablation_index_structure.dir/ablation_index_structure.cc.o"
  "CMakeFiles/ablation_index_structure.dir/ablation_index_structure.cc.o.d"
  "ablation_index_structure"
  "ablation_index_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
