# Empty compiler generated dependencies file for fig14_readwrite_scaling.
# This may be replaced when dependencies are built.
