# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec642_tango_hyder_compare.
