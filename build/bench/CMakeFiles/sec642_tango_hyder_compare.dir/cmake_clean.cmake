file(REMOVE_RECURSE
  "CMakeFiles/sec642_tango_hyder_compare.dir/sec642_tango_hyder_compare.cc.o"
  "CMakeFiles/sec642_tango_hyder_compare.dir/sec642_tango_hyder_compare.cc.o.d"
  "sec642_tango_hyder_compare"
  "sec642_tango_hyder_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec642_tango_hyder_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
