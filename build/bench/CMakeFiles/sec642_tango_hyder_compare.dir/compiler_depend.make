# Empty compiler generated dependencies file for sec642_tango_hyder_compare.
# This may be replaced when dependencies are built.
