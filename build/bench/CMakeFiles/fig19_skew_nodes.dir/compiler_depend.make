# Empty compiler generated dependencies file for fig19_skew_nodes.
# This may be replaced when dependencies are built.
