file(REMOVE_RECURSE
  "CMakeFiles/fig19_skew_nodes.dir/fig19_skew_nodes.cc.o"
  "CMakeFiles/fig19_skew_nodes.dir/fig19_skew_nodes.cc.o.d"
  "fig19_skew_nodes"
  "fig19_skew_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_skew_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
