# Empty dependencies file for fig10_writeonly_throughput.
# This may be replaced when dependencies are built.
