# Empty compiler generated dependencies file for fig18_skew_throughput.
# This may be replaced when dependencies are built.
