file(REMOVE_RECURSE
  "CMakeFiles/fig17_si_nodes.dir/fig17_si_nodes.cc.o"
  "CMakeFiles/fig17_si_nodes.dir/fig17_si_nodes.cc.o.d"
  "fig17_si_nodes"
  "fig17_si_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_si_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
