# Empty dependencies file for fig17_si_nodes.
# This may be replaced when dependencies are built.
