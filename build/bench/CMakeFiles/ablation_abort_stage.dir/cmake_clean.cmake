file(REMOVE_RECURSE
  "CMakeFiles/ablation_abort_stage.dir/ablation_abort_stage.cc.o"
  "CMakeFiles/ablation_abort_stage.dir/ablation_abort_stage.cc.o.d"
  "ablation_abort_stage"
  "ablation_abort_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_abort_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
