# Empty dependencies file for ablation_abort_stage.
# This may be replaced when dependencies are built.
