# Empty dependencies file for fig09_log_append.
# This may be replaced when dependencies are built.
