file(REMOVE_RECURSE
  "CMakeFiles/fig09_log_append.dir/fig09_log_append.cc.o"
  "CMakeFiles/fig09_log_append.dir/fig09_log_append.cc.o.d"
  "fig09_log_append"
  "fig09_log_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_log_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
