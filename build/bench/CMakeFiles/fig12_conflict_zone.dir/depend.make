# Empty dependencies file for fig12_conflict_zone.
# This may be replaced when dependencies are built.
