file(REMOVE_RECURSE
  "CMakeFiles/fig12_conflict_zone.dir/fig12_conflict_zone.cc.o"
  "CMakeFiles/fig12_conflict_zone.dir/fig12_conflict_zone.cc.o.d"
  "fig12_conflict_zone"
  "fig12_conflict_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_conflict_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
