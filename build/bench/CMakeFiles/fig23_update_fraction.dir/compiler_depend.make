# Empty compiler generated dependencies file for fig23_update_fraction.
# This may be replaced when dependencies are built.
