file(REMOVE_RECURSE
  "CMakeFiles/fig23_update_fraction.dir/fig23_update_fraction.cc.o"
  "CMakeFiles/fig23_update_fraction.dir/fig23_update_fraction.cc.o.d"
  "fig23_update_fraction"
  "fig23_update_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_update_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
