file(REMOVE_RECURSE
  "CMakeFiles/fig11_final_meld_nodes.dir/fig11_final_meld_nodes.cc.o"
  "CMakeFiles/fig11_final_meld_nodes.dir/fig11_final_meld_nodes.cc.o.d"
  "fig11_final_meld_nodes"
  "fig11_final_meld_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_final_meld_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
