# Empty dependencies file for fig11_final_meld_nodes.
# This may be replaced when dependencies are built.
