# Empty compiler generated dependencies file for fig22_txn_size_nodes.
# This may be replaced when dependencies are built.
