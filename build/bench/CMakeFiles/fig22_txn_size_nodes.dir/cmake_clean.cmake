file(REMOVE_RECURSE
  "CMakeFiles/fig22_txn_size_nodes.dir/fig22_txn_size_nodes.cc.o"
  "CMakeFiles/fig22_txn_size_nodes.dir/fig22_txn_size_nodes.cc.o.d"
  "fig22_txn_size_nodes"
  "fig22_txn_size_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_txn_size_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
