# Empty compiler generated dependencies file for ablation_graft_fastpath.
# This may be replaced when dependencies are built.
