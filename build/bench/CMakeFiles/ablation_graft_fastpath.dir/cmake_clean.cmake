file(REMOVE_RECURSE
  "CMakeFiles/ablation_graft_fastpath.dir/ablation_graft_fastpath.cc.o"
  "CMakeFiles/ablation_graft_fastpath.dir/ablation_graft_fastpath.cc.o.d"
  "ablation_graft_fastpath"
  "ablation_graft_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_graft_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
