# Empty compiler generated dependencies file for hyder_bench_common.
# This may be replaced when dependencies are built.
