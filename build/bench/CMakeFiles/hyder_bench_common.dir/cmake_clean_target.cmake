file(REMOVE_RECURSE
  "libhyder_bench_common.a"
)
