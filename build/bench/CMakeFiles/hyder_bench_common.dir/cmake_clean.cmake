file(REMOVE_RECURSE
  "CMakeFiles/hyder_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/hyder_bench_common.dir/bench_common.cc.o.d"
  "libhyder_bench_common.a"
  "libhyder_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyder_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
