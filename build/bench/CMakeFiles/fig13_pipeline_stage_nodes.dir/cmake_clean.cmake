file(REMOVE_RECURSE
  "CMakeFiles/fig13_pipeline_stage_nodes.dir/fig13_pipeline_stage_nodes.cc.o"
  "CMakeFiles/fig13_pipeline_stage_nodes.dir/fig13_pipeline_stage_nodes.cc.o.d"
  "fig13_pipeline_stage_nodes"
  "fig13_pipeline_stage_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_pipeline_stage_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
