# Empty dependencies file for fig13_pipeline_stage_nodes.
# This may be replaced when dependencies are built.
