file(REMOVE_RECURSE
  "CMakeFiles/fig16_si_optimizations.dir/fig16_si_optimizations.cc.o"
  "CMakeFiles/fig16_si_optimizations.dir/fig16_si_optimizations.cc.o.d"
  "fig16_si_optimizations"
  "fig16_si_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_si_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
