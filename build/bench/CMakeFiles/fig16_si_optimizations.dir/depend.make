# Empty dependencies file for fig16_si_optimizations.
# This may be replaced when dependencies are built.
