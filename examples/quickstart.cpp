// Quickstart: a single Hyder II server on a shared log.
//
// Demonstrates the core public API: starting a server over a striped shared
// log, running optimistic transactions (reads, writes, deletes, range
// scans), choosing isolation levels, and seeing optimistic concurrency
// control abort a conflicting transaction.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "log/striped_log.h"
#include "server/server.h"
#include "tree/node_pool.h"

using namespace hyder;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    auto _st = (expr);                                        \
    if (!_st.ok()) {                                          \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _st.ToString().c_str());         \
      return 1;                                               \
    }                                                         \
  } while (0)

int main() {
  // The shared log is the database (§1): every server appends intention
  // blocks to it and rolls it forward deterministically.
  StripedLogOptions log_options;
  log_options.block_size = 8192;  // The paper's block size (§6.3).
  log_options.storage_units = 6;
  StripedLog log(log_options);

  ServerOptions options;
  options.default_isolation = IsolationLevel::kSerializable;
  HyderServer server(&log, options);

  // --- 1. Basic transactional writes. -----------------------------------
  {
    Transaction txn = server.Begin();
    CHECK_OK(txn.Put(100, "alice"));
    CHECK_OK(txn.Put(200, "bob"));
    CHECK_OK(txn.Put(300, "carol"));
    auto committed = server.Commit(std::move(txn));
    CHECK_OK(committed.status());
    std::printf("insert txn committed: %s\n", *committed ? "yes" : "no");
  }

  // --- 2. Snapshot reads and range scans. --------------------------------
  {
    Transaction txn = server.Begin();
    auto value = txn.Get(200);
    CHECK_OK(value.status());
    std::printf("key 200 -> %s\n", value->value_or("<absent>").c_str());

    auto range = txn.Scan(100, 250);
    CHECK_OK(range.status());
    std::printf("scan [100,250]: %zu items\n", range->size());
    for (const auto& [k, v] : *range) {
      std::printf("  %llu -> %s\n", static_cast<unsigned long long>(k),
                  v.c_str());
    }
    // Read-only transactions commit locally; they are never logged (§1).
    auto sub = server.Submit(std::move(txn));
    CHECK_OK(sub.status());
    std::printf("read-only txn decided immediately: %s\n",
                sub->decided ? "yes" : "no");
  }

  // --- 3. Optimistic concurrency control in action. ----------------------
  {
    // Two transactions race on key 200 from the same snapshot. The one
    // whose intention lands in the log first wins; meld aborts the other.
    Transaction first = server.Begin();
    Transaction second = server.Begin();
    CHECK_OK(first.Put(200, "bob-updated-by-first"));
    CHECK_OK(second.Put(200, "bob-updated-by-second"));
    auto r1 = server.Commit(std::move(first));
    auto r2 = server.Commit(std::move(second));
    CHECK_OK(r1.status());
    CHECK_OK(r2.status());
    std::printf("conflicting writers: first=%s second=%s\n",
                *r1 ? "committed" : "aborted",
                *r2 ? "committed" : "aborted");
  }

  // --- 4. Snapshot isolation allows stale reads, not stale writes. -------
  {
    Transaction si = server.Begin(IsolationLevel::kSnapshot);
    auto value = si.Get(200);  // Read-set not validated under SI (§6.4.4).
    CHECK_OK(value.status());
    Transaction writer = server.Begin();
    CHECK_OK(writer.Put(200, "bob-again"));
    CHECK_OK(server.Commit(std::move(writer)).status());
    CHECK_OK(si.Put(300, "carol-updated"));
    auto r = server.Commit(std::move(si));
    CHECK_OK(r.status());
    std::printf("snapshot-isolation txn with stale read: %s\n",
                *r ? "committed" : "aborted");
  }

  // --- 5. Deletes. --------------------------------------------------------
  {
    Transaction txn = server.Begin();
    auto removed = txn.Delete(100);
    CHECK_OK(removed.status());
    CHECK_OK(server.Commit(std::move(txn)).status());
    Transaction check = server.Begin();
    auto value = check.Get(100);
    CHECK_OK(value.status());
    std::printf("key 100 after delete -> %s\n",
                value->value_or("<absent>").c_str());
  }

  const PipelineStats& stats = server.stats();
  std::printf("\nmeld pipeline: %s\n", stats.ToString().c_str());
  std::printf("node arena: %s\n", NodeArenaStats().ToString().c_str());
  std::printf("log: %llu blocks appended\n",
              static_cast<unsigned long long>(log.stats().appends));
  return 0;
}
