// A full Hyder II deployment in one process: several transaction servers
// over one shared striped log, running the meld pipeline WITH the paper's
// optimizations (5 premeld threads, distance 10 — the best configuration of
// §6.4.1/Fig. 20), driven by a YCSB-style workload. Shows:
//   * scale-out without partitioning: every server takes writes for any key;
//   * deterministic replication: all servers reach physically identical
//     states (same ephemeral node identities, §3.4);
//   * the premeld optimization visibly shrinking final-meld work (Fig. 11).

#include <cstdio>

#include "server/cluster.h"
#include "tree/node_pool.h"
#include "workload/workload.h"

using namespace hyder;

#define CHECK_OK(expr)                                                     \
  do {                                                                     \
    auto _st = (expr);                                                     \
    if (!_st.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,        \
                   _st.ToString().c_str());                                \
      return 1;                                                            \
    }                                                                      \
  } while (0)

int main() {
  ServerOptions options;
  // 5 premeld threads as in the paper; the premeld distance is chosen so
  // t*d+1 sits well inside this example's conflict zone (~128 in-flight
  // transactions) — the same proportionality the paper uses, where d=10
  // against zones of 10K+ intentions (§3.2, §6.4.6).
  options.pipeline.premeld_threads = 5;
  options.pipeline.premeld_distance = 4;
  options.pipeline.state_retention = 4096;

  StripedLogOptions log_options;
  log_options.block_size = 8192;
  log_options.storage_units = 6;

  constexpr int kServers = 4;
  Cluster cluster(kServers, log_options, options);

  WorkloadOptions wopts;
  wopts.db_size = 20'000;
  wopts.ops_per_txn = 10;
  wopts.update_fraction = 0.2;  // The paper's 8 reads + 2 writes.
  WorkloadGenerator gen(wopts);

  std::printf("seeding %llu items...\n",
              static_cast<unsigned long long>(wopts.db_size));
  CHECK_OK(gen.SeedDatabase(cluster.server(0)));
  CHECK_OK(cluster.PollAll());

  // Round-robin transactions across servers with a batch of in-flight
  // intentions per round, so conflict zones stay non-trivial.
  std::printf("running 1200 transactions across %d servers...\n", kServers);
  int committed = 0, aborted = 0;
  std::vector<std::pair<int, uint64_t>> pending;
  for (int i = 0; i < 1200; ++i) {
    const int s = i % kServers;
    Transaction txn = cluster.server(s).Begin();
    CHECK_OK(gen.FillWriteTransaction(txn));
    auto sub = cluster.server(s).Submit(std::move(txn));
    CHECK_OK(sub.status());
    pending.emplace_back(s, sub->txn_id);
    if (pending.size() >= 128) {
      CHECK_OK(cluster.PollAll());
      for (auto& [srv, id] : pending) {
        auto outcome = cluster.server(srv).Outcome(id);
        if (outcome.has_value()) {
          *outcome ? ++committed : ++aborted;
        }
      }
      pending.clear();
    }
  }
  CHECK_OK(cluster.PollAll());
  for (auto& [srv, id] : pending) {
    auto outcome = cluster.server(srv).Outcome(id);
    if (outcome.has_value()) *outcome ? ++committed : ++aborted;
  }

  std::printf("committed=%d aborted=%d (abort rate %.2f%%)\n", committed,
              aborted, 100.0 * aborted / (committed + aborted));

  // Determinism: every replica reached the same physical state.
  std::string diff;
  auto converged = cluster.StatesConverged(&diff);
  CHECK_OK(converged.status());
  std::printf("replicas physically identical: %s\n",
              *converged ? "yes" : diff.c_str());

  // Premeld's effect on the final meld stage (Fig. 11): compare nodes
  // visited by premeld vs final meld on server 0.
  const PipelineStats& stats = cluster.server(0).stats();
  std::printf("premeld stage visited %llu tree nodes vs final meld's %llu "
              "(premeld absorbs conflict-zone work off the critical path)\n",
              static_cast<unsigned long long>(stats.premeld.nodes_visited),
              static_cast<unsigned long long>(
                  stats.final_meld.nodes_visited));
  std::printf("server 0 pipeline: %s\n", stats.ToString().c_str());
  std::printf("node arena: %s\n", NodeArenaStats().ToString().c_str());
  return *converged ? 0 : 1;
}
