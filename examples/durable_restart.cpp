// Operations walkthrough: durability, checkpointing and fast restart.
//
// "The complete persistent database is in the log" (§2) — this example runs
// Hyder II over a *file-backed* shared log, crashes (drops every in-memory
// structure), and shows two recovery paths:
//   1. full replay: a fresh server melds the log from position one;
//   2. checkpoint bootstrap: a fresh server reconstructs the checkpointed
//      state (including deterministic ephemeral node identities, §3.4) and
//      replays only the suffix — the mechanism that also makes the log
//      prefix truncatable.
//
// Run: ./build/examples/durable_restart [path]

#include <cstdio>

#include "common/stopwatch.h"
#include "log/file_log.h"
#include "server/checkpoint.h"
#include "server/server.h"

using namespace hyder;

#define CHECK_OK(expr)                                                     \
  do {                                                                     \
    auto _st = (expr);                                                     \
    if (!_st.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,        \
                   _st.ToString().c_str());                                \
      return 1;                                                            \
    }                                                                      \
  } while (0)

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/hyder_durable_example.log";
  std::remove(path.c_str());
  FileLog::Options log_options;
  log_options.block_size = 8192;

  constexpr Key kItems = 5000;
  uint64_t checkpoint_first_block = 0;

  // --- Phase 1: populate, checkpoint, write a suffix, then "crash". ------
  {
    auto log = FileLog::Open(path, log_options);
    CHECK_OK(log.status());
    HyderServer server(log->get(), ServerOptions{});
    std::printf("phase 1: writing %llu items to %s\n",
                (unsigned long long)kItems, path.c_str());
    for (Key k = 0; k < kItems; k += 500) {
      Transaction txn = server.Begin(IsolationLevel::kSnapshot);
      for (Key i = k; i < k + 500 && i < kItems; ++i) {
        CHECK_OK(txn.Put(i, "value-" + std::to_string(i)));
      }
      auto r = server.Commit(std::move(txn));
      CHECK_OK(r.status());
    }
    auto info = WriteCheckpoint(server);
    CHECK_OK(info.status());
    checkpoint_first_block = info->first_block;
    std::printf("checkpoint: state seq %llu, %llu nodes in %llu blocks at "
                "log position %llu\n",
                (unsigned long long)info->state_seq,
                (unsigned long long)info->node_count,
                (unsigned long long)info->block_count,
                (unsigned long long)info->first_block);
    // Post-checkpoint traffic that recovery must replay.
    Transaction txn = server.Begin();
    CHECK_OK(txn.Put(42, "written after the checkpoint"));
    auto r = server.Commit(std::move(txn));
    CHECK_OK(r.status());
  }  // <- crash: every in-memory state, cache and registry is gone.

  // --- Phase 2a: recovery by full replay. --------------------------------
  {
    auto log = FileLog::Open(path, log_options);
    CHECK_OK(log.status());
    HyderServer server(log->get(), ServerOptions{});
    Stopwatch timer;
    CHECK_OK(server.Poll().status());  // Meld the entire log.
    std::printf("full replay: %llu intentions in %.1f ms\n",
                (unsigned long long)server.stats().intentions,
                timer.ElapsedSeconds() * 1e3);
    Transaction check = server.Begin();
    auto v = check.Get(42);
    CHECK_OK(v.status());
    std::printf("  key 42 -> %s\n", v->value_or("<absent>").c_str());
  }

  // --- Phase 2b: recovery via the checkpoint. -----------------------------
  {
    auto log = FileLog::Open(path, log_options);
    CHECK_OK(log.status());
    auto info = FindLatestCheckpoint(**log);
    CHECK_OK(info.status());
    if (!info->has_value()) {
      std::fprintf(stderr, "no checkpoint found\n");
      return 1;
    }
    Stopwatch timer;
    auto server = BootstrapFromCheckpoint(log->get(), **info,
                                          ServerOptions{});
    CHECK_OK(server.status());
    CHECK_OK((*server)->Poll().status());  // Only the suffix melds.
    std::printf("checkpoint bootstrap: %llu suffix intention(s) in %.1f ms "
                "(log prefix before block %llu is now truncatable)\n",
                (unsigned long long)(*server)->stats().intentions,
                timer.ElapsedSeconds() * 1e3,
                (unsigned long long)checkpoint_first_block);
    Transaction check = (*server)->Begin();
    auto v0 = check.Get(0);
    auto v42 = check.Get(42);
    CHECK_OK(v0.status());
    CHECK_OK(v42.status());
    std::printf("  key 0 -> %s\n  key 42 -> %s\n",
                v0->value_or("<absent>").c_str(),
                v42->value_or("<absent>").c_str());
    // And the bootstrapped server keeps serving transactions.
    Transaction txn = (*server)->Begin();
    CHECK_OK(txn.Put(7, "post-recovery write"));
    auto r = (*server)->Commit(std::move(txn));
    CHECK_OK(r.status());
    std::printf("post-recovery transaction: %s\n",
                *r ? "committed" : "aborted");
  }
  std::remove(path.c_str());
  return 0;
}
