// Serializable isolation under fire: concurrent transfers between accounts
// plus auditors running range scans, all optimistic. The invariant — total
// balance is constant — holds if and only if meld's validation (readset
// checks + phantom guards, §2/Appendix A) is correct: a transfer that read
// stale balances, or an audit that scanned mid-transfer state, must abort.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "log/striped_log.h"
#include "server/server.h"
#include "tree/node_pool.h"

using namespace hyder;

namespace {

constexpr Key kAccounts = 100;
constexpr long kInitialBalance = 1'000;

#define CHECK_OK(expr)                                                     \
  do {                                                                     \
    auto _st = (expr);                                                     \
    if (!_st.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,        \
                   _st.ToString().c_str());                                \
      std::exit(1);                                                        \
    }                                                                      \
  } while (0)

long ParseBalance(const std::string& s) { return std::atol(s.c_str()); }

// Audits the books with one serializable range scan.
long Audit(HyderServer& server) {
  Transaction txn = server.Begin(IsolationLevel::kSerializable);
  auto items = txn.Scan(0, kAccounts - 1);
  CHECK_OK(items.status());
  long total = 0;
  for (auto& [k, v] : *items) total += ParseBalance(v);
  auto sub = server.Submit(std::move(txn));  // Read-only.
  CHECK_OK(sub.status());
  return total;
}

}  // namespace

int main() {
  StripedLog log(StripedLogOptions{});
  HyderServer server(&log, ServerOptions{});

  // Open the accounts.
  Transaction seed = server.Begin();
  for (Key account = 0; account < kAccounts; ++account) {
    CHECK_OK(seed.Put(account, std::to_string(kInitialBalance)));
  }
  CHECK_OK(server.Commit(std::move(seed)).status());
  const long expected_total = kAccounts * kInitialBalance;

  Rng rng(2026);
  int committed = 0, aborted = 0, audits_ok = 0;
  for (int round = 0; round < 400; ++round) {
    // Two transfers race from the same snapshot every round; when their
    // account sets overlap, OCC must abort the loser.
    Transaction t1 = server.Begin();
    Transaction t2 = server.Begin();
    auto run = [&](Transaction& txn) -> bool {
      Key from = rng.Uniform(kAccounts);
      Key to = rng.Uniform(kAccounts);
      if (from == to) to = (to + 1) % kAccounts;
      long amount = long(rng.UniformRange(1, 50));
      auto vf = txn.Get(from);
      auto vt = txn.Get(to);
      CHECK_OK(vf.status());
      CHECK_OK(vt.status());
      long bf = ParseBalance(**vf), bt = ParseBalance(**vt);
      if (bf < amount) return false;
      CHECK_OK(txn.Put(from, std::to_string(bf - amount)));
      CHECK_OK(txn.Put(to, std::to_string(bt + amount)));
      return true;
    };
    bool w1 = run(t1);
    bool w2 = run(t2);
    if (w1) {
      auto r = server.Commit(std::move(t1));
      CHECK_OK(r.status());
      *r ? ++committed : ++aborted;
    }
    if (w2) {
      auto r = server.Commit(std::move(t2));
      CHECK_OK(r.status());
      *r ? ++committed : ++aborted;
    }
    if (round % 40 == 0) {
      long total = Audit(server);
      if (total == expected_total) {
        audits_ok++;
      } else {
        std::fprintf(stderr, "AUDIT FAILED at round %d: %ld != %ld\n",
                     round, total, expected_total);
        return 1;
      }
    }
  }
  const long final_total = Audit(server);
  std::printf("transfers committed: %d, aborted by OCC: %d\n", committed,
              aborted);
  std::printf("audits passed: %d, final total: %ld (expected %ld)\n",
              audits_ok + 1, final_total, expected_total);
  std::printf("meld pipeline: %s\n", server.stats().ToString().c_str());
  std::printf("node arena: %s\n", NodeArenaStats().ToString().c_str());
  return final_total == expected_total ? 0 : 1;
}
