// The paper's motivating workload (§1): a friend-status relation in a
// social network. A many-to-many relationship traversed in both directions
// cannot be partitioned so that most transactions are single-partition —
// when user U posts a status, it must become visible to all of U's friends,
// wherever they are "partitioned". Hyder II scales out WITHOUT partitioning:
// any server can run any transaction, because all servers share one log and
// meld it deterministically.
//
// Key layout (a composite-key encoding over the tree's integer keyspace):
//   user status:      (0, user)          -> status text
//   friend edge:      (1, user, friend)  -> ""        (range-scannable!)
//   timeline marker:  (2, user, seq)     -> status the user saw
//
// The tree's range scans make the "feed" query natural — the very thing the
// paper notes Tango's hash index cannot do (§6.4.2).

#include <cstdio>
#include <string>
#include <vector>

#include "server/cluster.h"

using namespace hyder;

namespace {

constexpr uint64_t kStatus = 0, kFriendEdge = 1;

// Composite keys packed as [table:8][a:28][b:28].
Key K(uint64_t table, uint64_t a, uint64_t b = 0) {
  return (table << 56) | (a << 28) | b;
}

#define CHECK_OK(expr)                                                     \
  do {                                                                     \
    auto _st = (expr);                                                     \
    if (!_st.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,        \
                   _st.ToString().c_str());                                \
      std::exit(1);                                                        \
    }                                                                      \
  } while (0)

// Befriends a and b (both directions) in one transaction.
void Befriend(HyderServer& server, uint64_t a, uint64_t b) {
  Transaction txn = server.Begin();
  CHECK_OK(txn.Put(K(kFriendEdge, a, b), ""));
  CHECK_OK(txn.Put(K(kFriendEdge, b, a), ""));
  auto r = server.Commit(std::move(txn));
  CHECK_OK(r.status());
}

// Posts a status for `user`.
bool PostStatus(HyderServer& server, uint64_t user,
                const std::string& text) {
  Transaction txn = server.Begin();
  CHECK_OK(txn.Put(K(kStatus, user), text));
  auto r = server.Commit(std::move(txn));
  CHECK_OK(r.status());
  return *r;
}

// Reads `user`'s feed: scans the friend edges (one range scan), then reads
// each friend's status — the bidirectional traversal that defeats
// partitioning, executed here as one read-only snapshot transaction.
std::vector<std::pair<uint64_t, std::string>> ReadFeed(HyderServer& server,
                                                       uint64_t user) {
  Transaction txn = server.Begin();
  auto edges = txn.Scan(K(kFriendEdge, user, 0), K(kFriendEdge, user + 1, 0) - 1);
  CHECK_OK(edges.status());
  std::vector<std::pair<uint64_t, std::string>> feed;
  for (const auto& [edge_key, unused] : *edges) {
    const uint64_t friend_id = edge_key & ((1ull << 28) - 1);
    auto status = txn.Get(K(kStatus, friend_id));
    CHECK_OK(status.status());
    if (status->has_value()) feed.emplace_back(friend_id, **status);
  }
  auto sub = server.Submit(std::move(txn));  // Read-only: local commit.
  CHECK_OK(sub.status());
  return feed;
}

}  // namespace

int main() {
  // Three transaction servers over one shared log — no partitioning: users
  // are NOT assigned to servers; any server serves anyone (§1, Fig. 1).
  StripedLogOptions log_options;
  log_options.block_size = 4096;
  Cluster cluster(3, log_options, ServerOptions{});

  // A celebrity (user 1) with many followers across "regions".
  constexpr uint64_t kCelebrity = 1;
  for (uint64_t fan = 2; fan <= 21; ++fan) {
    Befriend(cluster.server(fan % 3), kCelebrity, fan);
  }
  CHECK_OK(cluster.PollAll());

  // Under partitioning, this one status update would touch every fan's
  // partition. Here it is a single-key write on any server.
  PostStatus(cluster.server(0), kCelebrity, "hello from the shared log!");
  for (uint64_t fan = 2; fan <= 21; ++fan) {
    PostStatus(cluster.server(fan % 3), fan,
               "fan " + std::to_string(fan) + " checking in");
  }
  CHECK_OK(cluster.PollAll());

  // Every fan's feed — read from *different* servers — sees the update.
  int fans_seeing_update = 0;
  for (uint64_t fan = 2; fan <= 21; ++fan) {
    auto feed = ReadFeed(cluster.server((fan + 1) % 3), fan);
    for (auto& [who, status] : feed) {
      if (who == kCelebrity && status == "hello from the shared log!") {
        fans_seeing_update++;
      }
    }
  }
  std::printf("fans seeing the celebrity update: %d / 20\n",
              fans_seeing_update);

  // The celebrity's feed traverses the same relation the other way.
  auto celeb_feed = ReadFeed(cluster.server(2), kCelebrity);
  std::printf("celebrity feed entries: %zu\n", celeb_feed.size());

  // Two fans race to update the same shared "wall" key — OCC arbitrates.
  Transaction a = cluster.server(0).Begin();
  Transaction b = cluster.server(1).Begin();
  CHECK_OK(a.Put(K(kStatus, 999), "first!"));
  CHECK_OK(b.Put(K(kStatus, 999), "no, first!"));
  auto sa = cluster.server(0).Submit(std::move(a));
  auto sb = cluster.server(1).Submit(std::move(b));
  CHECK_OK(sa.status());
  CHECK_OK(sb.status());
  CHECK_OK(cluster.PollAll());
  std::printf("wall race: server0=%s server1=%s\n",
              *cluster.server(0).Outcome(sa->txn_id) ? "won" : "aborted",
              *cluster.server(1).Outcome(sb->txn_id) ? "won" : "aborted");

  // All replicas converged to physically identical states (§3.4).
  std::string diff;
  auto converged = cluster.StatesConverged(&diff);
  CHECK_OK(converged.status());
  std::printf("replicas physically identical: %s\n",
              *converged ? "yes" : diff.c_str());
  return *converged && fans_seeing_update == 20 ? 0 : 1;
}
